// Detection-count contracts for the benchmark suite: each workload's cycle
// and defect counts (which Tables 1–2 depend on) are structural properties
// of the programs and must be stable across recording seeds.
#include <gtest/gtest.h>

#include <set>

#include "core/detector.hpp"
#include "core/pruner.hpp"
#include "sim/scheduler.hpp"
#include "workloads/cache4j.hpp"
#include "workloads/collections.hpp"
#include "workloads/jigsaw.hpp"
#include "workloads/logging.hpp"
#include "workloads/slowdown.hpp"
#include "workloads/suite.hpp"

namespace wolf {
namespace {

Detection detect_program(const sim::Program& program, std::uint64_t seed,
                         std::uint64_t max_steps = 2'000'000) {
  auto trace = sim::record_trace(program, seed, 60, max_steps);
  EXPECT_TRUE(trace.has_value()) << program.name;
  return detect(*trace);
}

TEST(WorkloadsTest, Cache4jIsDeadlockFree) {
  Detection det = detect_program(workloads::make_cache4j(), 1);
  EXPECT_TRUE(det.cycles.empty());
}

TEST(WorkloadsTest, ListFamilyHasNineCyclesSixDefects) {
  for (const char* kind : {"ArrayList", "Stack", "LinkedList"}) {
    Detection det =
        detect_program(workloads::make_collections_list(kind).program, 7);
    EXPECT_EQ(det.cycles.size(), 9u) << kind;
    EXPECT_EQ(det.defects.size(), 6u) << kind;
    // None are pruned — the workers genuinely overlap.
    for (PruneVerdict v : prune(det))
      EXPECT_EQ(v, PruneVerdict::kUnknown) << kind;
  }
}

TEST(WorkloadsTest, MapFamilyHasFourCyclesThreeDefects) {
  for (const char* kind : {"HashMap", "TreeMap", "WeakHashMap",
                           "LinkedHashMap", "IdentityHashMap"}) {
    Detection det =
        detect_program(workloads::make_collections_map(kind).program, 7);
    EXPECT_EQ(det.cycles.size(), 4u) << kind;
    EXPECT_EQ(det.defects.size(), 3u) << kind;
  }
}

TEST(WorkloadsTest, LoggingHasTwoRealCycles) {
  Detection det = detect_program(workloads::make_logging().program, 7);
  EXPECT_EQ(det.cycles.size(), 2u);
  EXPECT_EQ(det.defects.size(), 2u);
  for (PruneVerdict v : prune(det)) EXPECT_EQ(v, PruneVerdict::kUnknown);
}

TEST(WorkloadsTest, JigsawTaxonomyMatchesDesign) {
  auto w = workloads::make_jigsaw();
  Detection det = detect_program(w.program, 2014, 400000);
  EXPECT_EQ(det.defects.size(), 30u);  // 7 + 6 + 17, like the paper's 30

  auto verdicts = prune(det);
  // Defect-level pruning: exactly the 7 ThreadCache instances.
  std::set<DefectSignature> pruned_defects;
  for (std::size_t c = 0; c < det.cycles.size(); ++c)
    if (is_false(verdicts[c]))
      pruned_defects.insert(signature_of(det.cycles[c], det.dep));
  EXPECT_EQ(pruned_defects.size(), 7u);
}

TEST(WorkloadsTest, JigsawCountsScaleWithConfig) {
  workloads::JigsawConfig config;
  config.fig1_instances = 2;
  config.data_dep_instances = 3;
  auto w = workloads::make_jigsaw(config);
  Detection det = detect_program(w.program, 5, 400000);
  EXPECT_EQ(det.defects.size(), 2u + 6u + 3u);
}

TEST(WorkloadsTest, DetectionCountsAreSeedIndependent) {
  auto w = workloads::make_collections_list("Stack");
  std::set<std::size_t> cycle_counts, defect_counts;
  for (std::uint64_t seed : {1ULL, 99ULL, 12345ULL}) {
    Detection det = detect_program(w.program, seed);
    cycle_counts.insert(det.cycles.size());
    defect_counts.insert(det.defects.size());
  }
  EXPECT_EQ(cycle_counts.size(), 1u);
  EXPECT_EQ(defect_counts.size(), 1u);
}

TEST(WorkloadsTest, StandardSuiteHasElevenBenchmarksInPaperOrder) {
  auto suite = workloads::standard_suite();
  ASSERT_EQ(suite.size(), 11u);
  EXPECT_EQ(suite[0].name, "cache4j");
  EXPECT_EQ(suite[1].name, "Jigsaw");
  EXPECT_EQ(suite[2].name, "JavaLogging");
  EXPECT_EQ(suite.back().name, "IdentityHashMap");
  // Paper totals embedded in the rows must sum to Table 1's counts.
  int detected = 0, fp = 0, tp_wolf = 0, tp_df = 0;
  for (const auto& b : suite) {
    detected += b.paper.detected;
    fp += b.paper.fp_pruner + b.paper.fp_generator;
    tp_wolf += b.paper.tp_wolf;
    tp_df += b.paper.tp_df;
  }
  EXPECT_EQ(detected, 65);
  EXPECT_EQ(fp, 12);
  EXPECT_EQ(tp_wolf, 36);
  EXPECT_EQ(tp_df, 23);
}

TEST(WorkloadsTest, FindBenchmarkLooksUpAndThrows) {
  auto suite = workloads::standard_suite();
  EXPECT_EQ(workloads::find_benchmark(suite, "Jigsaw").name, "Jigsaw");
  EXPECT_THROW(workloads::find_benchmark(suite, "nope"), CheckFailure);
}

TEST(WorkloadsTest, SlowdownMirrorIsDeadlockFree) {
  workloads::SlowdownProfile profile;
  profile.ops_per_thread = 50;
  sim::Program p = workloads::make_slowdown_mirror("test", profile);
  Detection det = detect_program(p, 3);
  EXPECT_TRUE(det.cycles.empty());
}

TEST(WorkloadsTest, ListFamilySignaturesAreMethodPairs) {
  auto w = workloads::make_collections_list("ArrayList");
  Detection det = detect_program(w.program, 7);
  std::set<DefectSignature> signatures;
  for (const Defect& d : det.defects) signatures.insert(d.signature);
  // All six unordered pairs over the three inner sites.
  std::set<DefectSignature> expected;
  for (int i = 0; i < 3; ++i)
    for (int j = i; j < 3; ++j) {
      DefectSignature sig{w.sites.inner[i], w.sites.inner[j]};
      std::sort(sig.begin(), sig.end());
      expected.insert(sig);
    }
  EXPECT_EQ(signatures, expected);
}

}  // namespace
}  // namespace wolf
