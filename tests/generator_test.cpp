// Tests for the Generator (Algorithm 3): exact edge sets, the θ4 cyclic-Gs
// elimination with its Fig. 7(b) witness, edge-kind precedence, vertex
// bookkeeping, edge filtering, and explorer-backed soundness of every
// cyclic-Gs verdict.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/generator.hpp"
#include "core/pruner.hpp"
#include "explore/explorer.hpp"
#include "sim/scheduler.hpp"
#include "testutil.hpp"
#include "workloads/paper_examples.hpp"

namespace wolf {
namespace {

Detection detect_program(const sim::Program& program, std::uint64_t seed) {
  auto trace = sim::record_trace(program, seed);
  EXPECT_TRUE(trace.has_value());
  return detect(*trace);
}

const PotentialDeadlock* cycle_with_signature(const Detection& det,
                                              std::vector<SiteId> sites) {
  std::sort(sites.begin(), sites.end());
  for (const PotentialDeadlock& c : det.cycles)
    if (signature_of(c, det.dep) == sites) return &c;
  return nullptr;
}

// --------------------------------------------------------- Figure 2 / θ4

class Figure2Test : public ::testing::Test {
 protected:
  void SetUp() override {
    fig_ = workloads::make_figure2();
    det_ = detect_program(fig_.program, 21);
    ASSERT_EQ(det_.cycles.size(), 4u);
  }
  workloads::Figure2 fig_;
  Detection det_;
};

TEST_F(Figure2Test, Theta4GsIsCyclicWithTheFig7bWitness) {
  const PotentialDeadlock* theta4 =
      cycle_with_signature(det_, {fig_.s522, fig_.s522});
  ASSERT_NE(theta4, nullptr);
  GeneratorResult gen = generate(*theta4, det_.dep);
  EXPECT_FALSE(gen.feasible);
  // The witness is the Fig. 7(b) loop through both threads' 2024 and 509.
  ASSERT_FALSE(gen.witness.empty());
  std::multiset<SiteId> witness_sites;
  for (const ExecIndex& idx : gen.witness) witness_sites.insert(idx.site);
  EXPECT_EQ(witness_sites,
            (std::multiset<SiteId>{fig_.s2024, fig_.s2024, fig_.s509,
                                   fig_.s509}));
}

TEST_F(Figure2Test, Theta1Through3AreFeasible) {
  for (const PotentialDeadlock& cycle : det_.cycles) {
    DefectSignature sig = signature_of(cycle, det_.dep);
    GeneratorResult gen = generate(cycle, det_.dep);
    const bool is_theta4 = sig == DefectSignature{fig_.s522, fig_.s522};
    EXPECT_EQ(gen.feasible, !is_theta4)
        << "cycle " << cycle.to_string(det_.dep);
  }
}

TEST_F(Figure2Test, Theta4IsIndeedUnreachable) {
  explore::ExploreResult explored = explore::explore(fig_.program);
  ASSERT_TRUE(explored.exhausted);
  EXPECT_FALSE(explored.deadlock_reachable_at({fig_.s522, fig_.s522}));
  // But the feasible cycles are reachable.
  std::vector<SiteId> theta1{fig_.s509, fig_.s509};
  EXPECT_TRUE(explored.deadlock_reachable_at(theta1));
  std::vector<SiteId> theta23{std::min(fig_.s509, fig_.s522),
                              std::max(fig_.s509, fig_.s522)};
  EXPECT_TRUE(explored.deadlock_reachable_at(theta23));
}

// --------------------------------------------------------- mechanics

TEST(SyncDependencyGraphTest, InternDeduplicatesVertices) {
  SyncDependencyGraph gs;
  GsVertex v{0, ExecIndex{0, 5, 0}, 3};
  Digraph::Node a = gs.intern(v);
  Digraph::Node b = gs.intern(v);
  EXPECT_EQ(a, b);
  EXPECT_EQ(gs.vertex_count(), 1);
}

TEST(SyncDependencyGraphTest, ConflictingVertexForSameIndexThrows) {
  SyncDependencyGraph gs;
  gs.intern(GsVertex{0, ExecIndex{0, 5, 0}, 3});
  EXPECT_THROW(gs.intern(GsVertex{0, ExecIndex{0, 5, 0}, 4}), CheckFailure);
}

TEST(SyncDependencyGraphTest, FirstEdgeKindWins) {
  SyncDependencyGraph gs;
  Digraph::Node a = gs.intern(GsVertex{0, ExecIndex{0, 1, 0}, 1});
  Digraph::Node b = gs.intern(GsVertex{1, ExecIndex{1, 2, 0}, 1});
  gs.add_edge(a, b, GsEdgeKind::kTypeD);
  gs.add_edge(a, b, GsEdgeKind::kTypeC);  // ignored
  auto edges = gs.edges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].kind, GsEdgeKind::kTypeD);
}

TEST(SyncDependencyGraphTest, CrossThreadInEdgeDetection) {
  SyncDependencyGraph gs;
  Digraph::Node a = gs.intern(GsVertex{0, ExecIndex{0, 1, 0}, 1});
  Digraph::Node b = gs.intern(GsVertex{0, ExecIndex{0, 2, 0}, 2});
  Digraph::Node c = gs.intern(GsVertex{1, ExecIndex{1, 3, 0}, 1});
  gs.add_edge(a, b, GsEdgeKind::kTypeP);  // same thread
  EXPECT_FALSE(gs.has_cross_thread_in_edge(b));
  gs.add_edge(c, b, GsEdgeKind::kTypeC);  // cross thread
  EXPECT_TRUE(gs.has_cross_thread_in_edge(b));
  gs.remove_vertex(c);
  EXPECT_FALSE(gs.has_cross_thread_in_edge(b));
}

TEST(SyncDependencyGraphTest, FindIgnoresRemovedVertices) {
  SyncDependencyGraph gs;
  ExecIndex idx{0, 1, 0};
  Digraph::Node a = gs.intern(GsVertex{0, idx, 1});
  EXPECT_TRUE(gs.find(idx).has_value());
  gs.remove_vertex(a);
  EXPECT_FALSE(gs.find(idx).has_value());
  gs.remove_vertex(a);  // idempotent
}

TEST(SyncDependencyGraphTest, DotNamesSites) {
  SiteTable sites;
  SiteId s = sites.intern("Foo.bar", 7);
  SyncDependencyGraph gs;
  gs.intern(GsVertex{0, ExecIndex{0, s, 0}, 1});
  EXPECT_NE(gs.to_dot(sites).find("Foo.bar:7"), std::string::npos);
}

TEST(GeneratorTest, FilterEdgesKeepsRequestedKindsOnly) {
  auto fig = workloads::make_figure4();
  Detection det = detect_program(fig.program, 42);
  const PotentialDeadlock* theta2 =
      cycle_with_signature(det, {fig.s19, fig.s33});
  ASSERT_NE(theta2, nullptr);
  GeneratorResult gen = generate(*theta2, det.dep);

  SyncDependencyGraph d_only = filter_edges(gen.gs, true, false, false);
  EXPECT_EQ(d_only.vertex_count(), gen.gs.vertex_count());
  for (const GsEdge& e : d_only.edges())
    EXPECT_EQ(e.kind, GsEdgeKind::kTypeD);
  EXPECT_EQ(d_only.edges().size(), 2u);

  SyncDependencyGraph no_c = filter_edges(gen.gs, true, false, true);
  for (const GsEdge& e : no_c.edges())
    EXPECT_NE(e.kind, GsEdgeKind::kTypeC);
}

TEST(GeneratorTest, DeadlockingTuplesAreNotTypeCSources) {
  // In Figure 4's θ′2, t1's deadlocking acquisition (site 19, lock l2) must
  // not order t3's l2 acquisition — that edge would close a false cycle.
  auto fig = workloads::make_figure4();
  Detection det = detect_program(fig.program, 42);
  const PotentialDeadlock* theta2 =
      cycle_with_signature(det, {fig.s19, fig.s33});
  ASSERT_NE(theta2, nullptr);
  GeneratorResult gen = generate(*theta2, det.dep);
  for (const GsEdge& e : gen.gs.edges())
    EXPECT_FALSE(e.from.site == fig.s19 && e.to.site == fig.s32);
}

TEST(GeneratorTest, VsCountsAllReferencedAcquisitions) {
  auto fig = workloads::make_figure4();
  Detection det = detect_program(fig.program, 42);
  const PotentialDeadlock* theta2 =
      cycle_with_signature(det, {fig.s19, fig.s33});
  ASSERT_NE(theta2, nullptr);
  GeneratorResult gen = generate(*theta2, det.dep);
  EXPECT_EQ(gen.gs.vertex_count(), 8);  // 11,12,16,18,19,31,32,33
}

TEST(GeneratorTest, PhilosophersGsIsFeasible) {
  auto w = workloads::make_philosophers(3);
  auto trace = sim::record_trace(w.program, 3);
  ASSERT_TRUE(trace.has_value());
  DetectorOptions options;
  options.max_cycle_length = 3;
  Detection det = detect(*trace, options);
  ASSERT_EQ(det.cycles.size(), 1u);
  GeneratorResult gen = generate(det.cycles[0], det.dep);
  EXPECT_TRUE(gen.feasible);
  EXPECT_EQ(gen.gs.vertex_count(), 6);  // two picks per philosopher
}

// --------------------------------------------------------- soundness

// Every cyclic-Gs verdict must be sound: the deadlock is unreachable in the
// exhaustive schedule space (on the recorded path — for branch-free random
// programs that is the full behaviour).
class GeneratorSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorSoundnessTest, CyclicGsImpliesUnreachable) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 11);
  test::RandomProgramConfig config;
  config.workers = 2 + static_cast<int>(rng.below(2));
  config.locks = 2 + static_cast<int>(rng.below(2));
  config.blocks_per_worker = 2;
  sim::Program program = test::random_program(rng, config);

  auto trace = sim::record_trace(program, rng(), 30);
  if (!trace.has_value()) GTEST_SKIP() << "recording kept deadlocking";
  Detection det = detect(*trace);

  bool any_infeasible = false;
  std::vector<bool> infeasible(det.cycles.size(), false);
  for (std::size_t c = 0; c < det.cycles.size(); ++c) {
    GeneratorResult gen = generate(det.cycles[c], det.dep);
    infeasible[c] = !gen.feasible;
    any_infeasible |= infeasible[c];
  }
  if (!any_infeasible) GTEST_SKIP() << "no cyclic Gs for this seed";

  explore::ExploreOptions explore_options;
  explore_options.max_states = 400000;
  explore::ExploreResult explored = explore::explore(program, explore_options);
  if (!explored.exhausted) GTEST_SKIP() << "state space too large";

  for (std::size_t c = 0; c < det.cycles.size(); ++c) {
    if (!infeasible[c]) continue;
    DefectSignature sig = signature_of(det.cycles[c], det.dep);
    EXPECT_FALSE(explored.deadlock_reachable_at(sig))
        << "cyclic-Gs cycle " << det.cycles[c].to_string(det.dep)
        << " is actually reachable";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSoundnessTest,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace wolf
