// Tests for the markdown report writer.
#include <gtest/gtest.h>

#include "core/report_writer.hpp"
#include "workloads/collections.hpp"

namespace wolf {
namespace {

WolfReport hashmap_report(sim::Program& out_program) {
  auto w = workloads::make_collections_map("HashMap");
  out_program = w.program;
  WolfOptions options;
  options.seed = 2014;
  options.replay.attempts = 6;
  return run_wolf(out_program, options);
}

TEST(ReportWriterTest, ContainsSummaryCounts) {
  sim::Program program;
  WolfReport report = hashmap_report(program);
  std::string md = write_markdown_report(report, program.sites());
  EXPECT_NE(md.find("# WOLF deadlock analysis"), std::string::npos);
  EXPECT_NE(md.find("| Potential deadlock cycles | 4 |"), std::string::npos);
  EXPECT_NE(md.find("| Source-location defects | 3 |"), std::string::npos);
  EXPECT_NE(md.find("| Confirmed real (reproduced) | 2 |"),
            std::string::npos);
  EXPECT_NE(md.find("| False positives (Generator) | 1 |"),
            std::string::npos);
}

TEST(ReportWriterTest, RankingSectionOrdersDefects) {
  sim::Program program;
  WolfReport report = hashmap_report(program);
  std::string md = write_markdown_report(report, program.sites());
  auto first = md.find("1. ");
  auto last = md.find("3. ");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(last, std::string::npos);
  // The generator-false θ4 defect must be ranked third.
  EXPECT_NE(md.find("false(generator)", last), std::string::npos);
}

TEST(ReportWriterTest, SectionsCanBeDisabled) {
  sim::Program program;
  WolfReport report = hashmap_report(program);
  ReportWriterOptions options;
  options.include_ranking = false;
  options.include_cycles = false;
  options.include_timings = false;
  options.title = "Custom title";
  std::string md = write_markdown_report(report, program.sites(), options);
  EXPECT_NE(md.find("# Custom title"), std::string::npos);
  EXPECT_EQ(md.find("## Defects"), std::string::npos);
  EXPECT_EQ(md.find("## Cycle detail"), std::string::npos);
  EXPECT_EQ(md.find("## Phase timings"), std::string::npos);
}

TEST(ReportWriterTest, WarnsWhenEnumerationTruncated) {
  sim::Program program;
  WolfReport report = hashmap_report(program);
  EXPECT_EQ(write_markdown_report(report, program.sites())
                .find("**Warning:** cycle enumeration stopped"),
            std::string::npos);

  report.detection.truncated = true;
  report.detection.cycle_cap = 4;
  std::string md = write_markdown_report(report, program.sites());
  EXPECT_NE(md.find("**Warning:** cycle enumeration stopped"),
            std::string::npos);
  // The markdown warning and the CLI stderr warning share one message
  // (truncation_message), so the texts cannot drift.
  EXPECT_NE(md.find(truncation_message(report.detection)),
            std::string::npos);
}

TEST(ReportWriterTest, HandlesUnrecordedTrace) {
  WolfReport report;
  report.trace_recorded = false;
  SiteTable sites;
  std::string md = write_markdown_report(report, sites);
  EXPECT_NE(md.find("No completed execution"), std::string::npos);
}

}  // namespace
}  // namespace wolf
