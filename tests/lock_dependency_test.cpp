// Tests for D_σ reconstruction: lockset/context bookkeeping, re-entrancy,
// hand-over-hand release order, µ, deduplication and thread prefixes.
#include <gtest/gtest.h>

#include <map>

#include "core/lock_dependency.hpp"
#include "core/online_sink.hpp"
#include "sim/scheduler.hpp"
#include "support/check.hpp"
#include "workloads/paper_examples.hpp"

namespace wolf {
namespace {

// Builds a trace from (kind, thread, site, lock) shorthand.
struct Step {
  EventKind kind;
  ThreadId thread;
  SiteId site;
  LockId lock;
};

Trace trace_of(std::initializer_list<Step> steps) {
  Trace trace;
  std::uint64_t seq = 0;
  std::map<std::pair<ThreadId, SiteId>, std::int32_t> occ;
  for (const Step& s : steps) {
    Event e;
    e.seq = seq++;
    e.kind = s.kind;
    e.thread = s.thread;
    e.site = s.site;
    e.occurrence = occ[{s.thread, s.site}]++;
    e.lock = s.lock;
    trace.events.push_back(e);
  }
  return trace;
}

constexpr EventKind A = EventKind::kLockAcquire;
constexpr EventKind R = EventKind::kLockRelease;

TEST(LockDependencyTest, SimpleNestedAcquisition) {
  Trace trace = trace_of({{A, 0, 1, 10}, {A, 0, 2, 11}, {R, 0, 3, 11},
                          {R, 0, 4, 10}});
  LockDependency dep = LockDependency::from_trace(trace);
  ASSERT_EQ(dep.tuples.size(), 2u);

  const LockTuple& outer = dep.tuples[0];
  EXPECT_EQ(outer.thread, 0);
  EXPECT_TRUE(outer.lockset.empty());
  EXPECT_EQ(outer.lock, 10);
  ASSERT_EQ(outer.context.size(), 1u);
  EXPECT_EQ(outer.context[0].site, 1);

  const LockTuple& inner = dep.tuples[1];
  EXPECT_EQ(inner.lockset, std::vector<LockId>{10});
  EXPECT_EQ(inner.lock, 11);
  ASSERT_EQ(inner.context.size(), 2u);
  EXPECT_EQ(inner.context[0].site, 1);
  EXPECT_EQ(inner.context[1].site, 2);
}

TEST(LockDependencyTest, HandOverHandReleaseOrder) {
  // Acquire 10, acquire 11, release 10 (out of order), acquire 12.
  Trace trace = trace_of({{A, 0, 1, 10},
                          {A, 0, 2, 11},
                          {R, 0, 3, 10},
                          {A, 0, 4, 12},
                          {R, 0, 5, 12},
                          {R, 0, 6, 11}});
  LockDependency dep = LockDependency::from_trace(trace);
  ASSERT_EQ(dep.tuples.size(), 3u);
  const LockTuple& third = dep.tuples[2];
  EXPECT_EQ(third.lockset, std::vector<LockId>{11});
  EXPECT_EQ(third.lock, 12);
}

TEST(LockDependencyTest, ReleaseOfUnheldLockThrows) {
  Trace trace = trace_of({{R, 0, 1, 10}});
  EXPECT_THROW(LockDependency::from_trace(trace), CheckFailure);
}

TEST(LockDependencyTest, MuMapsLocksetAndAcquiredLock) {
  Trace trace = trace_of({{A, 0, 1, 10}, {A, 0, 2, 11}, {A, 0, 3, 12},
                          {R, 0, 4, 12}, {R, 0, 5, 11}, {R, 0, 6, 10}});
  LockDependency dep = LockDependency::from_trace(trace);
  const LockTuple& deepest = dep.tuples[2];
  EXPECT_EQ(deepest.mu(10).site, 1);
  EXPECT_EQ(deepest.mu(11).site, 2);
  EXPECT_EQ(deepest.mu(12).site, 3);  // the acquired lock itself
  EXPECT_THROW(deepest.mu(99), CheckFailure);
}

TEST(LockDependencyTest, HoldsChecksLocksetOnly) {
  Trace trace = trace_of({{A, 0, 1, 10}, {A, 0, 2, 11}, {R, 0, 3, 11},
                          {R, 0, 4, 10}});
  LockDependency dep = LockDependency::from_trace(trace);
  EXPECT_TRUE(dep.tuples[1].holds(10));
  EXPECT_FALSE(dep.tuples[1].holds(11));  // the acquired lock is not "held"
  EXPECT_FALSE(dep.tuples[0].holds(10));
}

TEST(LockDependencyTest, DedupCollapsesRepeatedContexts) {
  // The same nested pattern executed twice: 4 tuples, 2 canonical.
  Trace trace = trace_of({{A, 0, 1, 10}, {A, 0, 2, 11}, {R, 0, 3, 11},
                          {R, 0, 4, 10}, {A, 0, 1, 10}, {A, 0, 2, 11},
                          {R, 0, 3, 11}, {R, 0, 4, 10}});
  LockDependency dep = LockDependency::from_trace(trace);
  EXPECT_EQ(dep.tuples.size(), 4u);
  EXPECT_EQ(dep.unique.size(), 2u);
  // Canonical representatives are the first occurrences.
  EXPECT_EQ(dep.unique[0], 0u);
  EXPECT_EQ(dep.unique[1], 1u);
}

TEST(LockDependencyTest, DifferentContextSitesStayDistinct) {
  // Same (thread, lock) but acquired from different sites.
  Trace trace = trace_of({{A, 0, 1, 10}, {R, 0, 2, 10}, {A, 0, 7, 10},
                          {R, 0, 8, 10}});
  LockDependency dep = LockDependency::from_trace(trace);
  EXPECT_EQ(dep.unique.size(), 2u);
}

TEST(LockDependencyTest, ThreadPrefixRespectsPositionAndThread) {
  Trace trace = trace_of({{A, 0, 1, 10}, {R, 0, 2, 10}, {A, 1, 3, 11},
                          {A, 0, 4, 12}, {R, 0, 5, 12}, {R, 1, 6, 11}});
  LockDependency dep = LockDependency::from_trace(trace);
  ASSERT_EQ(dep.tuples.size(), 3u);
  // Prefix of thread 0 up to its second acquisition (trace position 3).
  auto prefix = dep.thread_prefix(0, 3);
  ASSERT_EQ(prefix.size(), 2u);
  EXPECT_EQ(dep.tuples[prefix[0]].lock, 10);
  EXPECT_EQ(dep.tuples[prefix[1]].lock, 12);
  // Prefix cut before it.
  EXPECT_EQ(dep.thread_prefix(0, 2).size(), 1u);
  EXPECT_EQ(dep.thread_prefix(1, 2).size(), 1u);
}

TEST(LockDependencyTest, TimestampsComeFromClockTracker) {
  // start bumps the parent's τ between two acquisitions (Fig. 5's η2 vs η8).
  Trace trace;
  std::uint64_t seq = 0;
  auto push = [&](EventKind kind, ThreadId t, SiteId site, LockId lock,
                  ThreadId other) {
    Event e;
    e.seq = seq++;
    e.kind = kind;
    e.thread = t;
    e.site = site;
    e.lock = lock;
    e.other = other;
    trace.events.push_back(e);
  };
  push(EventKind::kThreadBegin, 0, kInvalidSite, kInvalidLock, kInvalidThread);
  push(A, 0, 1, 10, kInvalidThread);
  push(R, 0, 2, 10, kInvalidThread);
  push(EventKind::kThreadStart, 0, 3, kInvalidLock, 1);
  push(A, 0, 4, 10, kInvalidThread);
  push(R, 0, 5, 10, kInvalidThread);

  LockDependency dep = LockDependency::from_trace(trace);
  ASSERT_EQ(dep.tuples.size(), 2u);
  EXPECT_EQ(dep.tuples[0].tau, 1);
  EXPECT_EQ(dep.tuples[1].tau, 2);
}

TEST(LockDependencyTest, OnlineSinkMatchesOfflineBuilder) {
  // The online instrumentation bookkeeping must agree exactly with the
  // offline reconstruction, on a real recorded workload.
  auto fig = workloads::make_figure4();
  auto trace = sim::record_trace(fig.program, 5);
  ASSERT_TRUE(trace.has_value());

  LockDependency offline = LockDependency::from_trace(*trace);
  OnlineAnalysisSink sink;
  for (const Event& e : trace->events) sink.on_event(e);
  LockDependency online = sink.take_dependency();

  ASSERT_EQ(online.tuples.size(), offline.tuples.size());
  for (std::size_t i = 0; i < online.tuples.size(); ++i) {
    EXPECT_EQ(online.tuples[i].thread, offline.tuples[i].thread);
    EXPECT_EQ(online.tuples[i].lock, offline.tuples[i].lock);
    EXPECT_EQ(online.tuples[i].lockset, offline.tuples[i].lockset);
    EXPECT_EQ(online.tuples[i].context, offline.tuples[i].context);
    EXPECT_EQ(online.tuples[i].tau, offline.tuples[i].tau);
  }
  EXPECT_EQ(online.unique, offline.unique);
}

TEST(LockDependencyTest, ToStringIsReadable) {
  Trace trace = trace_of({{A, 0, 1, 10}, {A, 0, 2, 11}, {R, 0, 3, 11},
                          {R, 0, 4, 10}});
  LockDependency dep = LockDependency::from_trace(trace);
  std::string s = dep.tuples[1].to_string();
  EXPECT_NE(s.find("t0"), std::string::npos);
  EXPECT_NE(s.find("l11"), std::string::npos);
}

}  // namespace
}  // namespace wolf
