// Tests for the fault-tolerance layer: retry/backoff policy, fault-plan
// parsing, the rt executor's wall-clock watchdog, injected stalls and dropped
// force-releases on both substrates, trace salvage, and per-cycle error
// isolation in the pipeline.
#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "core/detector.hpp"
#include "core/pipeline.hpp"
#include "core/replayer.hpp"
#include "robust/fault.hpp"
#include "robust/retry.hpp"
#include "rt/executor.hpp"
#include "sim/scheduler.hpp"
#include "trace/serialize.hpp"
#include "workloads/collections.hpp"
#include "workloads/paper_examples.hpp"

namespace wolf {
namespace {

using robust::FaultPlan;
using robust::RetryPolicy;
using robust::RetryState;

// ---------------------------------------------------------------- retry ----

TEST(RetryPolicyTest, BackoffScheduleWithoutJitter) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 10;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 40;
  Rng rng(1);
  EXPECT_EQ(robust::backoff_before_attempt(policy, 0, rng), 0);
  EXPECT_EQ(robust::backoff_before_attempt(policy, 1, rng), 10);
  EXPECT_EQ(robust::backoff_before_attempt(policy, 2, rng), 20);
  EXPECT_EQ(robust::backoff_before_attempt(policy, 3, rng), 40);
  EXPECT_EQ(robust::backoff_before_attempt(policy, 4, rng), 40);  // clamped
}

TEST(RetryPolicyTest, ZeroInitialBackoffNeverSleeps) {
  RetryPolicy policy;  // initial_backoff_ms = 0
  Rng rng(1);
  for (int attempt = 0; attempt < 6; ++attempt)
    EXPECT_EQ(robust::backoff_before_attempt(policy, attempt, rng), 0);
}

TEST(RetryPolicyTest, JitterStaysWithinBounds) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 100;
  policy.max_backoff_ms = 1000;
  policy.jitter = 0.5;
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    std::int64_t b = robust::backoff_before_attempt(policy, 1, rng);
    EXPECT_GE(b, 50);
    EXPECT_LE(b, 150);
  }
}

TEST(RetryStateTest, RunsExactlyMaxAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  RetryState state(policy, 42);
  int attempts = 0;
  while (state.next_attempt()) ++attempts;
  EXPECT_EQ(attempts, 5);
  EXPECT_EQ(state.total_backoff_ms(), 0);  // zero backoff: no sleeping
}

TEST(RetryStateTest, ZeroMaxAttemptsNeverStarts) {
  RetryPolicy policy;
  policy.max_attempts = 0;
  RetryState state(policy, 42);
  EXPECT_FALSE(state.next_attempt());
}

// ----------------------------------------------------------- fault plan ----

TEST(FaultPlanTest, ParsesFullSpec) {
  std::string error;
  auto plan = robust::parse_fault_plan(
      "delay:t=1,op=2,ms=5000,steps=3;drop-releases;classify-throw=0;"
      "truncate=0.9;garble=2",
      &error);
  ASSERT_TRUE(plan.has_value()) << error;
  ASSERT_EQ(plan->delays.size(), 1u);
  EXPECT_EQ(plan->delays[0].thread, 1);
  EXPECT_EQ(plan->delays[0].at_op, 2);
  EXPECT_EQ(plan->delays[0].wall_ms, 5000);
  EXPECT_EQ(plan->delays[0].steps, 3);
  EXPECT_TRUE(plan->drop_force_releases);
  EXPECT_EQ(plan->classify_throw_cycle, 0);
  EXPECT_DOUBLE_EQ(plan->truncate_fraction, 0.9);
  EXPECT_EQ(plan->garble_line, 2);
  EXPECT_TRUE(plan->corrupts_trace());
  ASSERT_NE(plan->find_delay(1, 2), nullptr);
  EXPECT_EQ(plan->find_delay(1, 3), nullptr);
  EXPECT_EQ(plan->find_delay(0, 2), nullptr);
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  std::string error;
  EXPECT_FALSE(robust::parse_fault_plan("frobnicate", &error).has_value());
  EXPECT_NE(error.find("unknown fault clause"), std::string::npos);
  EXPECT_FALSE(robust::parse_fault_plan("delay:op=2", &error).has_value());
  EXPECT_NE(error.find("t=<thread>"), std::string::npos);
  EXPECT_FALSE(robust::parse_fault_plan("truncate=1.5", &error).has_value());
  EXPECT_FALSE(robust::parse_fault_plan("garble=x", &error).has_value());
}

TEST(FaultPlanTest, ParsesByteLevelAndDetectionClauses) {
  std::string error;
  auto plan = robust::parse_fault_plan(
      "tear=4096;bitflip=3;detect-throw-window=2", &error);
  ASSERT_TRUE(plan.has_value()) << error;
  EXPECT_EQ(plan->io_tear_after, 4096);
  EXPECT_EQ(plan->bitflip_count, 3);
  EXPECT_EQ(plan->detect_throw_window, 2);
  EXPECT_TRUE(plan->corrupts_trace());
  EXPECT_FALSE(plan->faults_execution());

  EXPECT_FALSE(robust::parse_fault_plan("tear=-1", &error).has_value());
  EXPECT_FALSE(robust::parse_fault_plan("bitflip=x", &error).has_value());
  EXPECT_FALSE(
      robust::parse_fault_plan("detect-throw-window=", &error).has_value());
}

TEST(FaultPlanTest, CorruptTraceBytesIsDeterministicInTheSeed) {
  FaultPlan plan;
  plan.bitflip_count = 4;
  const std::string bytes(256, 'x');
  const std::string a = robust::corrupt_trace_bytes(bytes, plan, 7);
  const std::string b = robust::corrupt_trace_bytes(bytes, plan, 7);
  const std::string c = robust::corrupt_trace_bytes(bytes, plan, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, bytes);
  EXPECT_NE(a, c);
  // Flips change bits in place; the size never moves without a tear.
  EXPECT_EQ(a.size(), bytes.size());

  FaultPlan torn = plan;
  torn.io_tear_after = 100;
  EXPECT_EQ(robust::corrupt_trace_bytes(bytes, torn, 7).size(), 100u);
}

TEST(FaultPlanTest, V3ChecksumCatchesASingleBitFlip) {
  // A flipped payload bit in a binary trace must never survive into the
  // salvaged events: the block checksum rejects the whole block, and the
  // diagnostic names it.
  workloads::CollectionsWorkload w = workloads::make_collections_map("HashMap");
  auto trace = sim::record_trace(w.program, 11, 40);
  ASSERT_TRUE(trace.has_value());
  const std::string bytes = trace_to_string(*trace, TraceFormat::kV3);

  FaultPlan plan;
  plan.bitflip_count = 1;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    const std::string flipped = robust::corrupt_trace_bytes(bytes, plan, seed);
    if (flipped == bytes) continue;  // flip landed on its own XOR twin
    SalvageReport report = salvage_trace_from_string(flipped);
    if (report.complete) {
      // The flip hit framing the reader rejects wholesale (magic/header);
      // completeness may only be claimed with every event intact.
      EXPECT_EQ(report.trace.events, trace->events) << "seed " << seed;
      continue;
    }
    // Every salvaged event is bit-exact: damaged blocks are dropped whole,
    // never silently altered.
    ASSERT_LE(report.trace.size(), trace->size());
    std::size_t matched = 0;
    for (const Event& e : report.trace.events) {
      while (matched < trace->size() && !(trace->events[matched] == e))
        ++matched;
      ASSERT_LT(matched, trace->size())
          << "seed " << seed << ": salvage produced an event the original "
          << "trace never contained";
      ++matched;
    }
  }
}

TEST(FaultPlanTest, CorruptTraceTextGarblesAndTruncates) {
  FaultPlan plan;
  plan.garble_line = 1;
  std::string text = "line0\nline1\nline2\n";
  std::string garbled = robust::corrupt_trace_text(text, plan);
  EXPECT_NE(garbled.find("corrupted by fault injection"), std::string::npos);
  EXPECT_NE(garbled.find("line0"), std::string::npos);
  EXPECT_EQ(garbled.find("line1"), std::string::npos);

  FaultPlan cut;
  cut.truncate_fraction = 0.5;
  std::string truncated = robust::corrupt_trace_text(text, cut);
  EXPECT_EQ(truncated.size(), text.size() / 2);
}

// ------------------------------------------------------------- watchdog ----

// main starts t1 and joins it; t1 is a single compute op.
sim::Program make_start_join_program() {
  sim::Program p;
  p.name = "start-join";
  ThreadId main = p.add_thread("main");
  ThreadId t1 = p.add_thread("t1");
  p.start(main, t1, p.site("main.start", 1));
  p.join(main, t1, p.site("main.join", 2));
  p.compute(t1, p.site("t1.work", 1));
  p.finalize();
  return p;
}

TEST(WatchdogTest, TimesOutHungRtTrial) {
  sim::Program p = make_start_join_program();
  FaultPlan fault;
  fault.delays.push_back({/*thread=*/1, /*at_op=*/0, /*wall_ms=*/60'000,
                          /*steps=*/0});

  rt::ExecutorOptions options;
  options.deadline_ms = 250;
  options.fault = &fault;

  auto begin = std::chrono::steady_clock::now();
  sim::RunResult result = rt::execute(p, options);
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - begin)
                        .count();

  // Without the watchdog this run sleeps 60 s; the trial must instead be
  // aborted near the 250 ms deadline, well before the injected stall ends.
  EXPECT_EQ(result.outcome, sim::RunOutcome::kTimeout);
  EXPECT_LT(elapsed_ms, 30'000);
}

TEST(WatchdogTest, CompletedRunIsNotFlaggedByDeadline) {
  sim::Program p = make_start_join_program();
  rt::ExecutorOptions options;
  options.deadline_ms = 60'000;
  sim::RunResult result = rt::execute(p, options);
  EXPECT_EQ(result.outcome, sim::RunOutcome::kCompleted);
}

// Pauses thread 1 at every top-level acquisition and never releases it.
class AlwaysPauseThread1 final : public sim::ScheduleController {
 public:
  bool before_lock(ThreadId t, const ExecIndex&, LockId) override {
    return t == 1;
  }
};

// main starts/joins t1; t1 takes and drops one lock.
sim::Program make_one_lock_program() {
  sim::Program p;
  p.name = "one-lock";
  ThreadId main = p.add_thread("main");
  ThreadId t1 = p.add_thread("t1");
  LockId l = p.add_lock("L", p.site("alloc", 1));
  p.start(main, t1, p.site("main.start", 1));
  p.join(main, t1, p.site("main.join", 2));
  p.lock(t1, l, p.site("t1.lock", 1));
  p.unlock(t1, l, p.site("t1.unlock", 2));
  p.finalize();
  return p;
}

TEST(WatchdogTest, DroppedForceReleaseTimesOutOnRt) {
  sim::Program p = make_one_lock_program();
  AlwaysPauseThread1 controller;
  FaultPlan fault;
  fault.drop_force_releases = true;

  rt::ExecutorOptions options;
  options.controller = &controller;
  options.fault = &fault;
  options.deadline_ms = 250;

  sim::RunResult result = rt::execute(p, options);
  EXPECT_EQ(result.outcome, sim::RunOutcome::kTimeout);
}

TEST(FaultSimTest, DroppedForceReleaseTimesOutOnSim) {
  sim::Program p = make_one_lock_program();
  AlwaysPauseThread1 controller;
  FaultPlan fault;
  fault.drop_force_releases = true;

  sim::SchedulerOptions options;
  options.controller = &controller;
  options.fault = &fault;

  sim::RandomPolicy policy;
  Rng rng(3);
  sim::RunResult result = sim::run_program(p, policy, rng, options);
  // Virtual time: the wedge is diagnosed immediately, no wall clock involved.
  EXPECT_EQ(result.outcome, sim::RunOutcome::kTimeout);
}

TEST(FaultSimTest, StepDelayConsumesStepsThenCompletes) {
  sim::Program p = make_start_join_program();
  sim::RandomPolicy policy;

  Rng rng_plain(5);
  sim::RunResult plain = sim::run_program(p, policy, rng_plain, {});
  ASSERT_EQ(plain.outcome, sim::RunOutcome::kCompleted);

  FaultPlan fault;
  fault.delays.push_back({/*thread=*/1, /*at_op=*/0, /*wall_ms=*/0,
                          /*steps=*/25});
  sim::SchedulerOptions options;
  options.fault = &fault;
  Rng rng_fault(5);
  sim::RunResult stalled = sim::run_program(p, policy, rng_fault, options);
  EXPECT_EQ(stalled.outcome, sim::RunOutcome::kCompleted);
  EXPECT_GE(stalled.steps, plain.steps + 25);
}

// ------------------------------------------------------------- salvage ----

TEST(SalvageTest, TruncatedTraceStillDetectsSeededCycle) {
  auto fig = workloads::make_figure4();
  auto trace = sim::record_trace(fig.program, 5);
  ASSERT_TRUE(trace.has_value());
  Detection full = detect(*trace);
  ASSERT_GE(full.cycles.size(), 1u);

  FaultPlan fault;
  fault.truncate_fraction = 0.9;  // crash-style mid-line cut, footer lost
  std::string damaged =
      robust::corrupt_trace_text(trace_to_string(*trace), fault);

  // The strict reader must reject the damaged text...
  std::string error;
  EXPECT_FALSE(trace_from_string(damaged, &error).has_value());

  // ...while salvage recovers a prefix that still contains the cycle.
  SalvageReport salvaged = salvage_trace_from_string(damaged);
  EXPECT_FALSE(salvaged.complete);
  EXPECT_FALSE(salvaged.diagnostics.empty());
  EXPECT_LT(salvaged.trace.size(), trace->size());
  Detection partial = detect(salvaged.trace);
  EXPECT_GE(partial.cycles.size(), 1u);
}

// ---------------------------------------------------- per-cycle isolation ----

TEST(IsolationTest, ThrowingClassificationDegradesOnlyThatCycle) {
  auto w = workloads::make_collections_map("HashMap", 2);
  FaultPlan fault;
  fault.classify_throw_cycle = 0;

  WolfOptions options;
  options.seed = 11;
  options.replay.attempts = 10;
  options.fault = &fault;
  WolfReport report = run_wolf(w.program, options);
  ASSERT_TRUE(report.trace_recorded);
  ASSERT_GE(report.cycles.size(), 2u);

  // The injected cycle is degraded with the reason recorded...
  EXPECT_EQ(report.cycles[0].classification, Classification::kUnknown);
  ASSERT_TRUE(report.cycles[0].degraded());
  EXPECT_NE(report.cycles[0].failure_reason.find("fault injection"),
            std::string::npos);

  // ...while the others classify normally, including at least one
  // reproduction.
  bool any_normal = false;
  for (std::size_t c = 1; c < report.cycles.size(); ++c) {
    EXPECT_FALSE(report.cycles[c].degraded());
    if (report.cycles[c].classification != Classification::kUnknown)
      any_normal = true;
  }
  EXPECT_TRUE(any_normal);
  EXPECT_GE(report.count_cycles(Classification::kReproduced), 1);

  // The summary surfaces the degradation.
  EXPECT_NE(report.summary(w.program.sites()).find("degraded"),
            std::string::npos);
}

TEST(IsolationTest, ClassifyCycleAlsoIsolatesThrows) {
  auto fig = workloads::make_figure4();
  auto trace = sim::record_trace(fig.program, 5);
  ASSERT_TRUE(trace.has_value());
  Detection det = detect(*trace);
  ASSERT_GE(det.cycles.size(), 1u);

  FaultPlan fault;
  fault.classify_throw_cycle = 0;
  WolfOptions options;
  options.fault = &fault;
  CycleReport report = classify_cycle(fig.program, det, 0, options);
  EXPECT_EQ(report.classification, Classification::kUnknown);
  EXPECT_NE(report.failure_reason.find("fault injection"), std::string::npos);
}

TEST(IsolationTest, ClassifyRunMapsTimeoutOutcome) {
  sim::RunResult run;
  run.outcome = sim::RunOutcome::kTimeout;
  EXPECT_EQ(classify_run(run, {}), ReplayOutcome::kTimeout);
  EXPECT_STREQ(to_string(ReplayOutcome::kTimeout), "timeout");

  ReplayStats stats;
  record_outcome(stats, ReplayOutcome::kTimeout);
  record_outcome(stats, ReplayOutcome::kNoDeadlock);
  EXPECT_EQ(stats.attempts, 2);
  EXPECT_EQ(stats.timeouts, 1);
  EXPECT_EQ(stats.no_deadlocks, 1);
  EXPECT_FALSE(stats.reproduced());
}

}  // namespace
}  // namespace wolf
