// Tests for the (S, J) vector clocks and the Algorithm-1 update rules.
#include <gtest/gtest.h>

#include "clock/clock_tracker.hpp"
#include "clock/vector_clock.hpp"

namespace wolf {
namespace {

// ---------------------------------------------------------------- VectorClock

TEST(VectorClockTest, DefaultsToBottom) {
  VectorClock v;
  EXPECT_EQ(v.at(0).S, kTsBottom);
  EXPECT_EQ(v.at(42).J, kTsBottom);
  EXPECT_EQ(v.size(), 0u);
}

TEST(VectorClockTest, MutableAtGrows) {
  VectorClock v;
  v.mutable_at(3).S = 7;
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.at(3).S, 7);
  EXPECT_EQ(v.at(2).S, kTsBottom);
}

TEST(VectorClockTest, ToStringShowsBottomAsUnderscore) {
  VectorClock v;
  v.mutable_at(0).S = 2;
  EXPECT_EQ(v.to_string(), "<(2,_)>");
}

// ---------------------------------------------------------------- ClockTracker

TEST(ClockTrackerTest, BeginSetsTimestampOnce) {
  ClockTracker clocks;
  EXPECT_EQ(clocks.timestamp(0), kTsBottom);
  clocks.on_thread_begin(0);
  EXPECT_EQ(clocks.timestamp(0), 1);
  clocks.on_thread_begin(0);  // idempotent
  EXPECT_EQ(clocks.timestamp(0), 1);
}

TEST(ClockTrackerTest, StartBumpsParentAndInitializesChild) {
  ClockTracker clocks;
  clocks.on_thread_begin(0);
  clocks.on_start(0, 1);
  EXPECT_EQ(clocks.timestamp(0), 2);
  EXPECT_EQ(clocks.timestamp(1), 1);
  // Child sees the parent's pre-start work as completed: V_c(p).S = τ_p.
  EXPECT_EQ(clocks.view(1, 0).S, 2);
  EXPECT_EQ(clocks.view(1, 0).J, kTsBottom);
  // Parent learns nothing.
  EXPECT_EQ(clocks.view(0, 1).S, kTsBottom);
}

TEST(ClockTrackerTest, GrandchildInheritsSFromChain) {
  // main starts t1, t1 starts t2: t2 must know that main's epoch-1 work is
  // in its past even though main never touched t2 (the Fig. 6 situation).
  ClockTracker clocks;
  clocks.on_thread_begin(0);
  clocks.on_start(0, 1);
  clocks.on_start(1, 2);
  EXPECT_EQ(clocks.view(2, 0).S, 2);  // copied from V_1(0).S
  EXPECT_EQ(clocks.view(2, 1).S, 2);  // t1's own pre-start epoch
  EXPECT_EQ(clocks.view(2, 2).S, kTsBottom);
}

TEST(ClockTrackerTest, JoinRecordsJInParent) {
  ClockTracker clocks;
  clocks.on_thread_begin(0);
  clocks.on_start(0, 1);  // τ0 = 2
  clocks.on_join(0, 1);   // τ0 = 3
  EXPECT_EQ(clocks.timestamp(0), 3);
  EXPECT_EQ(clocks.view(0, 1).J, 3);
  EXPECT_EQ(clocks.view(0, 1).S, kTsBottom);
}

TEST(ClockTrackerTest, JoinIsTransitiveThroughChildClocks) {
  // t1 joins t2; later t0 joins t1 — t0 must also learn that t2 can no
  // longer overlap it (Algorithm 1, lines 24-28).
  ClockTracker clocks;
  clocks.on_thread_begin(0);
  clocks.on_start(0, 1);
  clocks.on_start(1, 2);
  clocks.on_join(1, 2);  // V_1(2).J set
  clocks.on_join(0, 1);  // τ0 = 3; V_0(1).J and transitively V_0(2).J
  EXPECT_EQ(clocks.view(0, 1).J, 3);
  EXPECT_EQ(clocks.view(0, 2).J, 3);
}

TEST(ClockTrackerTest, ExistingJNotOverwrittenOnLaterJoin) {
  ClockTracker clocks;
  clocks.on_thread_begin(0);
  clocks.on_start(0, 1);
  clocks.on_start(0, 2);
  clocks.on_join(0, 1);  // τ0 = 4, V_0(1).J = 4
  clocks.on_join(0, 2);  // τ0 = 5; V_0(1).J must stay 4
  EXPECT_EQ(clocks.view(0, 1).J, 4);
  EXPECT_EQ(clocks.view(0, 2).J, 5);
}

TEST(ClockTrackerTest, ChildOfJoinerInheritsJKnowledge) {
  // t0 joins t1, then starts t2: t2 can never overlap t1 — Algorithm 1
  // line 17 sets V_c(1).J = τ_c = 1 (every t2 instruction is after t1).
  ClockTracker clocks;
  clocks.on_thread_begin(0);
  clocks.on_start(0, 1);
  clocks.on_join(0, 1);
  clocks.on_start(0, 2);
  EXPECT_EQ(clocks.view(2, 1).J, 1);
  EXPECT_EQ(clocks.view(2, 0).S, 4);  // τ0 after start bump
}

TEST(ClockTrackerTest, ApplyDispatchesEventKinds) {
  ClockTracker clocks;
  Event begin;
  begin.kind = EventKind::kThreadBegin;
  begin.thread = 0;
  clocks.apply(begin);
  Event start;
  start.kind = EventKind::kThreadStart;
  start.thread = 0;
  start.other = 1;
  clocks.apply(start);
  Event acquire;
  acquire.kind = EventKind::kLockAcquire;
  acquire.thread = 1;
  acquire.lock = 0;
  clocks.apply(acquire);  // lazily begins thread 1 (already begun by start)
  EXPECT_EQ(clocks.timestamp(0), 2);
  EXPECT_EQ(clocks.timestamp(1), 1);
}

TEST(ClockTrackerTest, LockEventsDoNotAdvanceTimestamps) {
  ClockTracker clocks;
  Event acquire;
  acquire.kind = EventKind::kLockAcquire;
  acquire.thread = 0;
  acquire.lock = 1;
  clocks.apply(acquire);
  clocks.apply(acquire);
  EXPECT_EQ(clocks.timestamp(0), 1);
}

TEST(ClockTrackerTest, UnknownThreadQueriesAreBottom) {
  ClockTracker clocks;
  EXPECT_EQ(clocks.timestamp(5), kTsBottom);
  EXPECT_EQ(clocks.view(5, 6).S, kTsBottom);
  EXPECT_EQ(clocks.max_thread(), -1);
}

TEST(ClockTrackerTest, SequentialWorkersViaJoinNeverOverlap) {
  // main: start t1; join t1; start t2 — the classic sequential pattern.
  // t2's clock must prove it cannot overlap t1.
  ClockTracker clocks;
  clocks.on_thread_begin(0);
  clocks.on_start(0, 1);  // τ0=2
  clocks.on_join(0, 1);   // τ0=3, V0(1).J=3
  clocks.on_start(0, 2);  // τ0=4, t2 inherits J for t1
  // Pruner's check: V_t2(t1).J ≠ ⊥ and ≤ any τ_t2 value (all ≥ 1).
  EXPECT_EQ(clocks.view(2, 1).J, 1);
  EXPECT_LE(clocks.view(2, 1).J, clocks.timestamp(2));
}

}  // namespace
}  // namespace wolf
