// The serve sidecar's test suite (DESIGN.md §18): protocol round trips,
// the socket-vs-local byte-identity differential, client-kill isolation,
// multi-client fairness against a pathological slow consumer, lifecycle
// (idle eviction, deadlines, busy rejection, graceful drain), and a chaos
// family proving the two server invariants — never crash, never silently
// wrong — under randomized torn/corrupt/slow/concurrent streams.
//
// The byte-identity tests work because protocol.hpp's builders are the only
// producers of response lines: the reference transcript below re-renders a
// locally computed Session through the same functions the server uses, so
// comparing strings compares analysis results, not formatter luck.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "robust/fault.hpp"
#include "serve/client.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sim/scheduler.hpp"
#include "support/rng.hpp"
#include "trace/serialize.hpp"
#include "trace/trace_reader.hpp"
#include "wolf.hpp"
#include "workloads/suite.hpp"

namespace wolf::serve {
namespace {

// ---- fixtures -------------------------------------------------------------

std::string unique_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/wolfserve-" + std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

// One recorded HashMap trace, shared by every test (recording is the slow
// part; the serve layer only ever sees its serialized bytes).
const Trace& hashmap_trace() {
  static const Trace trace = [] {
    for (workloads::Benchmark& b : workloads::standard_suite())
      if (b.name == "HashMap") {
        auto t = sim::record_trace(b.program, /*seed=*/7);
        EXPECT_TRUE(t.has_value());
        return *t;
      }
    ADD_FAILURE() << "HashMap workload missing";
    return Trace{};
  }();
  return trace;
}

std::string hashmap_bytes() {
  return trace_to_string(hashmap_trace(), TraceFormat::kV3);
}

// A started server on a fresh socket; stops on destruction.
struct TestServer {
  explicit TestServer(ServeOptions opts) : server([&] {
    opts.socket_path = unique_socket_path();
    return opts;
  }()) {
    std::string error;
    started = server.start(&error);
    EXPECT_TRUE(started) << error;
  }
  ~TestServer() { server.stop(); }

  const std::string& path() const { return server.options().socket_path; }

  Server server;
  bool started = false;
};

// What the server should say for this exact trace and config: the same
// Session the server opens, drained the same way (block feed + per-block
// poll), rendered through the same protocol builders.
struct Transcript {
  std::vector<std::string> live;
  std::string verdict;
};

Transcript reference_transcript(const std::string& bytes, Config cfg) {
  Transcript out;
  Session session = Session::open(cfg);
  std::istringstream is(bytes);
  StreamTraceReader raw(is, StreamTraceReader::Mode::kSalvage);
  std::vector<Event> block;
  while (raw.next_block(block)) {
    session.feed(block);
    for (const SessionCycle& c : session.poll())
      out.live.push_back(live_line(c));
  }
  const std::uint64_t events = session.events_seen();
  Session::Verdict verdict = session.finish();
  for (const SessionCycle& c : session.poll())
    out.live.push_back(live_line(c));
  out.verdict =
      verdict_line(verdict, /*stream_complete=*/raw.complete(),
                   /*stream_note=*/std::string(), events);
  return out;
}

// The server-side session Config that a hello with `params` produces, given
// the server's defaults.
Config session_config(const ServeOptions& opts,
                      const std::map<std::string, std::string>& params) {
  Config cfg = opts.session;
  std::string error;
  EXPECT_TRUE(apply_params(params, cfg, error)) << error;
  return cfg;
}

// Strips the trailing '\n' the builders append, for line-list comparison
// against EmitResult's getline-split lines.
std::string chomp(std::string line) {
  if (!line.empty() && line.back() == '\n') line.pop_back();
  return line;
}

// ---- protocol unit tests --------------------------------------------------

TEST(ServeProtocolTest, HelloFormatParseRoundTrip) {
  std::map<std::string, std::string> params{{"window", "64"},
                                            {"budget-mb", "32"},
                                            {"jobs", "4"}};
  const std::string line = format_hello("worker-1", params);
  HelloRequest req;
  std::string error;
  ASSERT_TRUE(parse_hello(line, req, error)) << error;
  EXPECT_EQ(req.kind, HelloRequest::Kind::kSession);
  EXPECT_EQ(req.name, "worker-1");
  EXPECT_EQ(req.params, params);

  ASSERT_TRUE(parse_hello("WOLFSERVE/1 status", req, error)) << error;
  EXPECT_EQ(req.kind, HelloRequest::Kind::kStatus);
  ASSERT_TRUE(parse_hello("WOLFSERVE/1 stop", req, error)) << error;
  EXPECT_EQ(req.kind, HelloRequest::Kind::kStop);
}

TEST(ServeProtocolTest, HelloRejectsMalformedLines) {
  HelloRequest req;
  std::string error;
  EXPECT_FALSE(parse_hello("GET / HTTP/1.1", req, error));
  EXPECT_FALSE(parse_hello("WOLFSERVE/2 session", req, error));
  EXPECT_FALSE(parse_hello("WOLFSERVE/1 shrug", req, error));
  EXPECT_FALSE(parse_hello("WOLFSERVE/1 session name=a window=abc",
                           req, error));
  EXPECT_FALSE(parse_hello("WOLFSERVE/1 session name=a unknown-key=1",
                           req, error));
}

TEST(ServeProtocolTest, ApplyParamsOverridesServerDefaults) {
  Config cfg;
  cfg.window_events = 1000;
  std::string error;
  ASSERT_TRUE(apply_params({{"window", "64"},
                            {"budget-mb", "8"},
                            {"deadline-ms", "250"},
                            {"jobs", "3"},
                            {"live", "0"}},
                           cfg, error))
      << error;
  EXPECT_EQ(cfg.window_events, 64u);
  EXPECT_EQ(cfg.memory_budget_mb, 8u);
  EXPECT_EQ(cfg.window_deadline_ms, 250);
  EXPECT_EQ(cfg.jobs, 3);
  EXPECT_FALSE(cfg.live);
}

TEST(ServeProtocolTest, JsonLinesRoundTripThroughTheirParsers) {
  // A live line whose description exercises every escape class.
  SessionCycle in{3, 7, "cycle \"a\"\\b\n\tend\x01"};
  SessionCycle out;
  ASSERT_TRUE(parse_live_line(live_line(in), out));
  EXPECT_EQ(out.window, in.window);
  EXPECT_EQ(out.sequence, in.sequence);
  EXPECT_EQ(out.description, in.description);

  std::string message;
  ASSERT_TRUE(parse_error_line(error_line("busy: 3 active"), message));
  EXPECT_EQ(message, "busy: 3 active");

  EXPECT_EQ(line_type(done_line()), "done");
  EXPECT_EQ(line_type("not json"), "");
}

TEST(ServeProtocolTest, VerdictLineRoundTripsThroughParser) {
  // Run a real governed session so the verdict carries real cycles.
  Config cfg;
  cfg.live = true;
  cfg.window_events = 8;
  Session session = Session::open(cfg);
  VectorTraceReader reader(hashmap_trace());
  session.ingest(reader);
  const std::uint64_t events = session.events_seen();
  Session::Verdict verdict = session.finish();
  const std::string line =
      verdict_line(verdict, /*stream_complete=*/true, "", events);

  VerdictFields fields;
  ASSERT_TRUE(parse_verdict_line(line, fields));
  EXPECT_TRUE(fields.complete);
  EXPECT_TRUE(fields.stream_complete);
  EXPECT_TRUE(fields.coverage_complete);
  EXPECT_EQ(fields.events, hashmap_trace().size());
  EXPECT_EQ(fields.windows, verdict.governor.windows);
  EXPECT_EQ(fields.summary, verdict.governor.summary());
  ASSERT_EQ(fields.cycles.size(), verdict.detection.cycles.size());
  for (std::size_t i = 0; i < fields.cycles.size(); ++i)
    EXPECT_EQ(fields.cycles[i],
              verdict.detection.cycles[i].to_string(verdict.detection.dep));
}

// ---- Session facade unit tests --------------------------------------------

TEST(ServeSessionTest, PollCollectsTheSameCyclesThePushSubscriberSees) {
  GovernorOptions opts;
  opts.window_events = 8;
  std::vector<std::string> pushed;
  opts.on_cycle = [&](const LiveCycle& lc) {
    pushed.push_back(lc.cycle->to_string(*lc.dep));
  };
  Session session = Session::open_governed(opts, /*collect_live=*/true);
  std::vector<std::string> polled;
  for (const Event& e : hashmap_trace().events) {
    session.feed(e);
    for (const SessionCycle& c : session.poll())
      polled.push_back(c.description);
  }
  session.finish();
  for (const SessionCycle& c : session.poll())
    polled.push_back(c.description);
  EXPECT_FALSE(polled.empty());
  EXPECT_EQ(polled, pushed);
}

// ---- the byte-identity differential ---------------------------------------

TEST(ServeServerTest, SocketSessionMatchesLocalSessionByteForByte) {
  ServeOptions opts;
  opts.session.window_events = 64;
  TestServer ts(opts);
  ASSERT_TRUE(ts.started);

  EmitOptions emit;
  emit.socket_path = ts.path();
  emit.name = "differential";
  emit.params["window"] = "16";  // multi-window coverage
  EmitResult result = emit_trace_bytes(emit, hashmap_bytes());
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_TRUE(result.complete);

  const Transcript ref = reference_transcript(
      hashmap_bytes(), session_config(ts.server.options(), emit.params));
  ASSERT_EQ(result.live_lines.size(), ref.live.size());
  for (std::size_t i = 0; i < ref.live.size(); ++i)
    EXPECT_EQ(result.live_lines[i], chomp(ref.live[i])) << "live line " << i;
  EXPECT_EQ(result.verdict_line, chomp(ref.verdict));
  EXPECT_FALSE(ref.live.empty()) << "trace surfaced no cycles; test is vacuous";
}

// ---- torn streams and isolation -------------------------------------------

TEST(ServeServerTest, TornHalfCloseGetsAnHonestIncompleteVerdict) {
  TestServer ts(ServeOptions{});
  ASSERT_TRUE(ts.started);

  EmitOptions emit;
  emit.socket_path = ts.path();
  emit.name = "torn";
  emit.kill_after_bytes =
      static_cast<std::int64_t>(hashmap_bytes().size() / 2);
  EmitResult result = emit_trace_bytes(emit, hashmap_bytes());
  ASSERT_TRUE(result.done) << result.error;
  EXPECT_FALSE(result.complete);
  EXPECT_FALSE(result.verdict.stream_complete);
  EXPECT_NE(result.verdict.stream_note.find("torn stream"), std::string::npos)
      << result.verdict.stream_note;

  const ServerStats stats = ts.server.stats();
  EXPECT_EQ(stats.sessions_torn, 1u);
  EXPECT_TRUE(ts.server.running());
}

TEST(ServeServerTest, VanishedClientNeverPoisonsAConcurrentSession) {
  ServeOptions opts;
  opts.session.window_events = 32;
  TestServer ts(opts);
  ASSERT_TRUE(ts.started);

  // Solo run first: the reference for the well-behaved client.
  const Transcript ref = reference_transcript(
      hashmap_bytes(), session_config(ts.server.options(), {}));

  // A client that dies mid-frame without even half-closing, concurrent with
  // a clean one.
  std::thread killer([&] {
    EmitOptions emit;
    emit.socket_path = ts.path();
    emit.name = "killed";
    emit.kill_after_bytes = 37;  // mid-header: maximally rude
    emit.vanish = true;
    emit_trace_bytes(emit, hashmap_bytes());
  });
  EmitOptions clean;
  clean.socket_path = ts.path();
  clean.name = "clean";
  EmitResult result = emit_trace_bytes(clean, hashmap_bytes());
  killer.join();

  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.verdict_line, chomp(ref.verdict));
  EXPECT_TRUE(ts.server.running());
  const ServerStats stats = ts.server.stats();
  EXPECT_EQ(stats.sessions_done, 1u);
  EXPECT_EQ(stats.sessions_torn, 1u);
}

// ---- multi-client fairness ------------------------------------------------

TEST(ServeServerTest, SlowConsumerDoesNotPerturbOtherSessionsVerdicts) {
  ServeOptions opts;
  opts.session.window_events = 64;
  TestServer ts(opts);
  ASSERT_TRUE(ts.started);

  const Transcript ref = reference_transcript(
      hashmap_bytes(), session_config(ts.server.options(), {}));

  // One pathological slow consumer dribbling bytes...
  std::thread slow([&] {
    EmitOptions emit;
    emit.socket_path = ts.path();
    emit.name = "slow";
    emit.chunk_bytes = 16;
    emit.throttle_ms = 10;
    EmitResult r = emit_trace_bytes(emit, hashmap_bytes());
    EXPECT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(r.complete);
  });

  // ...while three normal clients stream concurrently. Each must match the
  // solo reference byte-for-byte: fairness is isolation, not throughput.
  std::vector<std::thread> normals;
  std::vector<EmitResult> results(3);
  for (int i = 0; i < 3; ++i)
    normals.emplace_back([&, i] {
      EmitOptions emit;
      emit.socket_path = ts.path();
      emit.name = "normal-" + std::to_string(i);
      results[static_cast<std::size_t>(i)] =
          emit_trace_bytes(emit, hashmap_bytes());
    });
  for (std::thread& t : normals) t.join();

  for (const EmitResult& r : results) {
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(r.complete);
    EXPECT_EQ(r.verdict_line, chomp(ref.verdict));
    ASSERT_EQ(r.live_lines.size(), ref.live.size());
    for (std::size_t i = 0; i < ref.live.size(); ++i)
      EXPECT_EQ(r.live_lines[i], chomp(ref.live[i]));
  }
  slow.join();

  // The registry recorded per-session latency for every lane.
  for (const SessionStats& s : ts.server.sessions())
    if (s.session_kind && s.state == SessionState::kDone)
      EXPECT_LT(s.p99_window_seconds, 60.0);
}

// ---- lifecycle ------------------------------------------------------------

TEST(ServeServerTest, BusyServerRejectsWithoutHarmingActiveSessions) {
  ServeOptions opts;
  opts.max_sessions = 1;
  TestServer ts(opts);
  ASSERT_TRUE(ts.started);

  // Occupy the only lane with a slow client.
  std::atomic<bool> slow_done{false};
  std::thread slow([&] {
    EmitOptions emit;
    emit.socket_path = ts.path();
    emit.name = "occupant";
    emit.chunk_bytes = 16;
    emit.throttle_ms = 50;
    EmitResult r = emit_trace_bytes(emit, hashmap_bytes());
    EXPECT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(r.complete);
    slow_done.store(true);
  });
  // Wait until the occupant is actually streaming.
  while (true) {
    bool streaming = false;
    for (const SessionStats& s : ts.server.sessions())
      if (s.state == SessionState::kStreaming) streaming = true;
    if (streaming || slow_done.load()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  EmitOptions emit;
  emit.socket_path = ts.path();
  emit.name = "rejected";
  EmitResult r = emit_trace_bytes(emit, hashmap_bytes());
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("busy"), std::string::npos) << r.error;
  slow.join();
  EXPECT_GE(ts.server.stats().rejected, 1u);
}

TEST(ServeServerTest, IdleSessionIsEvictedWithAnHonestVerdict) {
  ServeOptions opts;
  opts.idle_timeout_ms = 200;
  TestServer ts(opts);
  ASSERT_TRUE(ts.started);

  // Hand-rolled client: hello, then silence. The server must evict and
  // still answer with a verdict + done, not just drop the connection.
  std::string error;
  Fd fd = unix_connect(ts.path(), &error);
  ASSERT_TRUE(fd.valid()) << error;
  std::string hello = format_hello("sleeper", {});
  hello += '\n';
  ASSERT_TRUE(write_all(fd.get(), hello));

  FdInBuf buf(fd.get());
  std::istream is(&buf);
  std::string line;
  bool saw_verdict = false;
  bool saw_done = false;
  VerdictFields fields;
  while (std::getline(is, line)) {
    if (line_type(line) == "verdict")
      saw_verdict = parse_verdict_line(line, fields);
    if (line_type(line) == "done") saw_done = true;
  }
  EXPECT_TRUE(saw_verdict);
  EXPECT_TRUE(saw_done);
  EXPECT_FALSE(fields.complete);
  EXPECT_NE(fields.stream_note.find("idle timeout"), std::string::npos)
      << fields.stream_note;
  EXPECT_EQ(ts.server.stats().sessions_evicted, 1u);
}

TEST(ServeServerTest, GarbageHelloGetsErrorLineAndServerKeepsServing) {
  TestServer ts(ServeOptions{});
  ASSERT_TRUE(ts.started);

  std::string error;
  Fd fd = unix_connect(ts.path(), &error);
  ASSERT_TRUE(fd.valid()) << error;
  ASSERT_TRUE(write_all(fd.get(), std::string("GET / HTTP/1.1\n")));
  shutdown_write(fd.get());
  FdInBuf buf(fd.get());
  std::istream is(&buf);
  std::string line;
  bool saw_error = false;
  while (std::getline(is, line))
    if (line_type(line) == "error") saw_error = true;
  EXPECT_TRUE(saw_error);

  // The next, well-formed client is unaffected.
  EmitOptions emit;
  emit.socket_path = ts.path();
  EmitResult r = emit_trace_bytes(emit, hashmap_bytes());
  EXPECT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.complete);
}

TEST(ServeServerTest, GarbageStreamYieldsTornVerdictNotACrash) {
  TestServer ts(ServeOptions{});
  ASSERT_TRUE(ts.started);

  EmitOptions emit;
  emit.socket_path = ts.path();
  emit.name = "garbage";
  EmitResult r = emit_trace_bytes(emit, "this is not a trace\nof any kind\n");
  ASSERT_TRUE(r.done) << r.error;
  EXPECT_FALSE(r.complete);
  EXPECT_TRUE(ts.server.running());
}

TEST(ServeServerTest, StopDrainsStragglersAndStaysIdempotent) {
  ServeOptions opts;
  opts.drain_deadline_ms = 100;
  TestServer ts(opts);
  ASSERT_TRUE(ts.started);

  // A client slow enough to still be streaming when stop() lands.
  std::thread slow([&] {
    EmitOptions emit;
    emit.socket_path = ts.path();
    emit.name = "straggler";
    emit.chunk_bytes = 32;
    emit.throttle_ms = 20;
    EmitResult r = emit_trace_bytes(emit, hashmap_bytes());
    // The drain force-ended the read: the verdict must still arrive and be
    // honestly incomplete (or, if the client squeaked through, complete).
    EXPECT_TRUE(r.done) << r.error;
  });
  while (ts.server.stats().sessions_started == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ts.server.stop();
  ts.server.stop();  // idempotent
  slow.join();
  EXPECT_FALSE(ts.server.running());
  EXPECT_EQ(ts.server.stats().finished(), ts.server.stats().sessions_started);
}

// ---- chaos ----------------------------------------------------------------

// Randomized adversarial clients: corrupt bytes, mid-frame kills, slow
// dribbles, several at once. Two invariants, every seed: the server never
// dies, and every verdict that is delivered is honest (a complete verdict
// only ever comes from an untouched full stream — checked by matching the
// clean reference).
TEST(ServeChaosTest, NeverCrashesNeverSilentlyWrong) {
  ServeOptions opts;
  opts.session.window_events = 32;
  TestServer ts(opts);
  ASSERT_TRUE(ts.started);

  const std::string bytes = hashmap_bytes();
  const Transcript ref =
      reference_transcript(bytes, session_config(ts.server.options(), {}));

  Rng rng(0xC4A05u);
  for (int seed = 0; seed < 6; ++seed) {
    std::vector<std::thread> clients;
    for (int c = 0; c < 3; ++c) {
      const bool corrupt = rng.chance(0.5);
      const bool kill = rng.chance(0.34);
      const bool vanish = kill && rng.chance(0.5);
      // Strictly mid-stream: a kill at the full length would deliver every
      // byte and honestly complete, which is not the axis under test.
      const std::int64_t kill_after =
          kill ? rng.range(1, static_cast<std::int64_t>(bytes.size()) - 1)
               : -1;
      const std::int64_t throttle = rng.chance(0.34) ? 1 : 0;
      const std::uint64_t flip_seed = rng();
      clients.emplace_back([&, corrupt, kill, vanish, kill_after, throttle,
                            flip_seed, seed, c] {
        std::string payload = bytes;
        if (corrupt) {
          robust::FaultPlan plan;
          plan.bitflip_count = 3;
          payload = robust::corrupt_trace_bytes(std::move(payload), plan,
                                                flip_seed);
        }
        EmitOptions emit;
        emit.socket_path = ts.path();
        emit.name = "chaos-" + std::to_string(seed) + "-" + std::to_string(c);
        emit.kill_after_bytes = kill_after;
        emit.vanish = vanish;
        emit.throttle_ms = throttle;
        emit.chunk_bytes = 512;
        EmitResult r = emit_trace_bytes(emit, payload);
        if (kill && vanish) return;  // we read nothing; nothing to check
        ASSERT_TRUE(r.done) << r.error;
        // Honesty: a complete verdict implies an untouched full stream.
        if (r.complete) {
          EXPECT_FALSE(corrupt);
          EXPECT_FALSE(kill);
          EXPECT_EQ(r.verdict_line, chomp(ref.verdict));
        }
        if (corrupt || kill) EXPECT_FALSE(r.verdict.stream_complete);
      });
    }
    for (std::thread& t : clients) t.join();
    ASSERT_TRUE(ts.server.running()) << "server died at seed " << seed;
  }

  // After the storm: a clean client still gets the exact reference answer.
  EmitOptions emit;
  emit.socket_path = ts.path();
  emit.name = "control";
  EmitResult r = emit_trace_bytes(emit, bytes);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.verdict_line, chomp(ref.verdict));
}

}  // namespace
}  // namespace wolf::serve
