// Tests for the OS-thread substrate: trace structure vs the virtual-thread
// scheduler, deadlock detection + in-process recovery, replay and fuzzing on
// real threads, and the uninstrumented mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/detector.hpp"
#include "core/generator.hpp"
#include "rt/executor.hpp"
#include "rt/replay_rt.hpp"
#include "workloads/cache4j.hpp"
#include "workloads/collections.hpp"
#include "workloads/paper_examples.hpp"

namespace wolf {
namespace {

TEST(RtExecutorTest, CompletesDeadlockFreeProgram) {
  sim::Program p = workloads::make_cache4j();
  sim::RunResult result = rt::execute(p);
  EXPECT_EQ(result.outcome, sim::RunOutcome::kCompleted);
}

TEST(RtExecutorTest, RecordsWellFormedTrace) {
  sim::Program p = workloads::make_cache4j();
  auto trace = rt::record_trace_rt(p, 7);
  ASSERT_TRUE(trace.has_value());

  std::map<ThreadId, bool> begun;
  std::map<std::pair<ThreadId, LockId>, int> depth;
  std::uint64_t last_seq = 0;
  bool first = true;
  for (const Event& e : trace->events) {
    if (!first) {
      EXPECT_GT(e.seq, last_seq);
    }
    last_seq = e.seq;
    first = false;
    if (e.kind == EventKind::kThreadBegin) {
      EXPECT_FALSE(begun[e.thread]);
      begun[e.thread] = true;
    } else {
      EXPECT_TRUE(begun[e.thread]);
    }
    if (e.kind == EventKind::kLockAcquire)
      ++depth[std::make_pair(e.thread, e.lock)];
    if (e.kind == EventKind::kLockRelease)
      --depth[std::make_pair(e.thread, e.lock)];
  }
  for (const auto& [key, d] : depth) EXPECT_EQ(d, 0);
}

TEST(RtExecutorTest, TraceTupleMultisetMatchesSimSubstrate) {
  // Same program, same instrumentation: the D_σ tuples (which are schedule-
  // independent for branch-free programs) must agree across substrates.
  auto fig = workloads::make_figure4();
  auto sim_trace = sim::record_trace(fig.program, 5);
  auto rt_trace = rt::record_trace_rt(fig.program, 5);
  ASSERT_TRUE(sim_trace.has_value());
  ASSERT_TRUE(rt_trace.has_value());

  auto tuple_keys = [](const Trace& trace) {
    LockDependency dep = LockDependency::from_trace(trace);
    std::multiset<std::string> keys;
    for (const LockTuple& t : dep.tuples) keys.insert(t.to_string());
    return keys;
  };
  EXPECT_EQ(tuple_keys(*sim_trace), tuple_keys(*rt_trace));
}

TEST(RtExecutorTest, DetectsAndRecoversFromRealDeadlock) {
  // AB/BA with no padding: the OS-thread race deadlocks some of the time;
  // drive it with the replayer to make it deterministic instead of flaky.
  auto w = workloads::make_collections_list("ArrayList");
  auto trace = rt::record_trace_rt(w.program, 17);
  ASSERT_TRUE(trace.has_value());
  Detection det = detect(*trace);
  ASSERT_EQ(det.cycles.size(), 9u);

  GeneratorResult gen = generate(det.cycles[0], det.dep);
  ASSERT_TRUE(gen.feasible);
  ReplayOptions options;
  options.attempts = 10;
  options.seed = 3;
  ReplayStats stats =
      rt::replay_rt(w.program, det.cycles[0], det.dep, gen.gs, options);
  EXPECT_TRUE(stats.reproduced());
}

TEST(RtExecutorTest, RtDetectionMatchesSimDetection) {
  auto w = workloads::make_collections_map("HashMap");
  auto rt_trace = rt::record_trace_rt(w.program, 23);
  ASSERT_TRUE(rt_trace.has_value());
  Detection det = detect(*rt_trace);
  EXPECT_EQ(det.cycles.size(), 4u);
  EXPECT_EQ(det.defects.size(), 3u);
}

TEST(RtExecutorTest, FuzzerRunsOnRealThreads) {
  auto fig = workloads::make_figure9();
  auto trace = rt::record_trace_rt(fig.program, 17);
  ASSERT_TRUE(trace.has_value());
  Detection det = detect(*trace);
  ASSERT_FALSE(det.cycles.empty());
  // Any outcome is acceptable; the trial must terminate and be classified.
  ReplayTrial trial =
      rt::fuzz_once_rt(fig.program, det.cycles[0], det.dep, 5);
  EXPECT_NE(trial.outcome, ReplayOutcome::kStepLimit);
}

TEST(RtExecutorTest, UninstrumentedModeEmitsNothing) {
  sim::Program p = workloads::make_cache4j();
  TraceRecorder recorder;
  rt::ExecutorOptions options;
  options.instrument = false;
  options.sink = &recorder;
  sim::RunResult result = rt::execute(p, options);
  EXPECT_EQ(result.outcome, sim::RunOutcome::kCompleted);
  EXPECT_TRUE(recorder.trace().empty());
}

TEST(RtExecutorTest, UninstrumentedDeadlockStillDetected) {
  // Wait-for-graph detection stays on without instrumentation, so a
  // deadlocking program cannot hang the process. Use a deterministic
  // deadlock: both threads start, each takes its first lock, gated by flags
  // so the interleaving is forced.
  sim::Program p;
  LockId a = p.add_lock("A", p.site("alloc", 1));
  LockId b = p.add_lock("B", p.site("alloc", 2));
  int fa = p.add_flag();
  int fb = p.add_flag();
  ThreadId main = p.add_thread("main");
  ThreadId t1 = p.add_thread("t1");
  ThreadId t2 = p.add_thread("t2");

  p.lock(t1, a, p.site("t1.a", 1));
  p.set_flag(t1, fa, 1, p.site("t1.sig", 2));
  int spin1 = p.compute(t1, p.site("t1.spin", 3));
  p.jump_if_flag(t1, fb, 0, spin1, p.site("t1.wait", 4));
  p.lock(t1, b, p.site("t1.b", 5));
  p.unlock(t1, b, p.site("t1.ub", 6));
  p.unlock(t1, a, p.site("t1.ua", 7));

  p.lock(t2, b, p.site("t2.b", 1));
  p.set_flag(t2, fb, 1, p.site("t2.sig", 2));
  int spin2 = p.compute(t2, p.site("t2.spin", 3));
  p.jump_if_flag(t2, fa, 0, spin2, p.site("t2.wait", 4));
  p.lock(t2, a, p.site("t2.a", 5));
  p.unlock(t2, a, p.site("t2.ua", 6));
  p.unlock(t2, b, p.site("t2.ub", 7));

  p.start(main, t1, p.site("spawn", 1));
  p.start(main, t2, p.site("spawn", 2));
  p.join(main, t1, p.site("join", 3));
  p.join(main, t2, p.site("join", 4));
  p.finalize();

  rt::ExecutorOptions options;
  options.instrument = false;
  sim::RunResult result = rt::execute(p, options);
  EXPECT_EQ(result.outcome, sim::RunOutcome::kDeadlock);
  EXPECT_EQ(result.deadlock_cycle.size(), 2u);
}

TEST(RtExecutorTest, ManyThreadsStress) {
  workloads::Cache4jConfig config;
  config.writers = 6;
  config.readers = 6;
  config.ops_per_thread = 30;
  sim::Program p = workloads::make_cache4j(config);
  for (int round = 0; round < 3; ++round) {
    TraceRecorder recorder;
    rt::ExecutorOptions options;
    options.sink = &recorder;
    options.seed = static_cast<std::uint64_t>(round);
    sim::RunResult result = rt::execute(p, options);
    EXPECT_EQ(result.outcome, sim::RunOutcome::kCompleted);
    EXPECT_GT(recorder.trace().size(), 100u);
  }
}

TEST(RtExecutorTest, RepeatedTrialsAreIndependent) {
  // Back-to-back deadlock + recovery cycles must not leak state between
  // executions (each execute() builds a fresh Executor).
  auto fig = workloads::make_figure9();
  auto trace = rt::record_trace_rt(fig.program, 17);
  ASSERT_TRUE(trace.has_value());
  Detection det = detect(*trace);
  std::vector<SiteId> wanted{det.cycles[0].tuple_idx.size() >= 2
                                 ? signature_of(det.cycles[0], det.dep)[0]
                                 : kInvalidSite};
  GeneratorResult gen = generate(det.cycles[0], det.dep);
  if (!gen.feasible) GTEST_SKIP();
  for (int i = 0; i < 5; ++i) {
    ReplayTrial trial = rt::replay_once_rt(fig.program, det.cycles[0],
                                           det.dep, gen.gs,
                                           static_cast<std::uint64_t>(i));
    EXPECT_NE(trial.outcome, ReplayOutcome::kStepLimit);
  }
}

}  // namespace
}  // namespace wolf
