// End-to-end integration across module boundaries: trace serialization
// round-trips feed the same analysis results; traces recorded on OS threads
// analyze identically to virtual-thread traces; and the whole suite's
// detection is invariant under the serialize → parse → detect path.
#include <gtest/gtest.h>

#include <set>

#include "baseline/df_pipeline.hpp"
#include "core/pipeline.hpp"
#include "rt/executor.hpp"
#include "trace/serialize.hpp"
#include "workloads/collections.hpp"
#include "workloads/suite.hpp"

namespace wolf {
namespace {

std::multiset<DefectSignature> defect_signatures(const Detection& det) {
  std::multiset<DefectSignature> out;
  for (const Defect& d : det.defects) out.insert(d.signature);
  return out;
}

TEST(IntegrationTest, SerializedTraceAnalyzesIdentically) {
  for (const workloads::Benchmark& bench : workloads::standard_suite()) {
    if (bench.name == "Jigsaw") continue;  // covered below, slower
    auto trace = sim::record_trace(bench.program, 31, 60, bench.max_steps);
    ASSERT_TRUE(trace.has_value()) << bench.name;

    std::string text = trace_to_string(*trace);
    std::string error;
    auto parsed = trace_from_string(text, &error);
    ASSERT_TRUE(parsed.has_value()) << bench.name << ": " << error;

    Detection direct = detect(*trace);
    Detection roundtrip = detect(*parsed);
    EXPECT_EQ(defect_signatures(direct), defect_signatures(roundtrip))
        << bench.name;
    EXPECT_EQ(direct.cycles.size(), roundtrip.cycles.size()) << bench.name;
  }
}

TEST(IntegrationTest, JigsawSerializedRoundTrip) {
  auto suite = workloads::standard_suite();
  const workloads::Benchmark& bench =
      workloads::find_benchmark(suite, "Jigsaw");
  auto trace = sim::record_trace(bench.program, 31, 60, bench.max_steps);
  ASSERT_TRUE(trace.has_value());
  auto parsed = trace_from_string(trace_to_string(*trace));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->events, trace->events);
  EXPECT_EQ(detect(*parsed).defects.size(), 30u);
}

TEST(IntegrationTest, RtTraceFeedsTheSamePipeline) {
  // A trace recorded on OS threads drives the sim-substrate pipeline: both
  // sides speak the same event model and thread naming.
  workloads::CollectionsWorkload w = workloads::make_collections_map("TreeMap");
  auto rt_trace = rt::record_trace_rt(w.program, 7);
  ASSERT_TRUE(rt_trace.has_value());

  WolfOptions options;
  options.seed = 3;
  options.replay.attempts = 8;
  WolfReport report = analyze_trace(w.program, *rt_trace, options);
  EXPECT_EQ(report.defects.size(), 3u);
  EXPECT_EQ(report.count_defects(Classification::kReproduced), 2);
  EXPECT_EQ(report.count_defects(Classification::kFalseByGenerator), 1);
}

TEST(IntegrationTest, WolfAndDfAgreeOnDetectionCounts) {
  // Detection (before any tool-specific classification) is shared: both
  // pipelines must report identical cycle/defect counts on the same trace.
  workloads::CollectionsWorkload w = workloads::make_collections_list("LinkedList");
  auto trace = sim::record_trace(w.program, 12);
  ASSERT_TRUE(trace.has_value());

  WolfOptions wolf_options;
  wolf_options.replay.attempts = 4;
  WolfReport wolf_report = analyze_trace(w.program, *trace, wolf_options);

  baseline::DfOptions df_options;
  df_options.replay.attempts = 4;
  baseline::DfReport df_report =
      baseline::analyze_trace_df(w.program, *trace, df_options);

  EXPECT_EQ(wolf_report.cycles.size(), df_report.cycles.size());
  EXPECT_EQ(wolf_report.defects.size(), df_report.defects.size());
  // And WOLF dominates on this workload (all 6 real, DF gets diagonals +
  // maybe more).
  EXPECT_GE(wolf_report.count_defects(Classification::kReproduced),
            df_report.count_defects(Classification::kReproduced));
}

TEST(IntegrationTest, SuiteWideHeadlineNumbersMatchTable1) {
  // The cumulative defect-level classification across the whole suite —
  // the paper's headline claim (65 / 12 / 36 / 17) — as a regression test.
  int detected = 0, fp = 0, tp = 0, unknown = 0;
  for (const workloads::Benchmark& bench : workloads::standard_suite()) {
    WolfOptions options;
    options.seed = 2014;
    options.replay.attempts = 6;
    options.max_steps = bench.max_steps;
    WolfReport report = run_wolf(bench.program, options);
    ASSERT_TRUE(report.trace_recorded || bench.name == "cache4j")
        << bench.name;
    detected += static_cast<int>(report.defects.size());
    fp += report.false_positive_defects();
    tp += report.count_defects(Classification::kReproduced);
    unknown += report.count_defects(Classification::kUnknown);
  }
  EXPECT_EQ(detected, 65);
  EXPECT_EQ(fp, 12);
  EXPECT_EQ(tp, 36);
  EXPECT_EQ(unknown, 17);
}

}  // namespace
}  // namespace wolf
