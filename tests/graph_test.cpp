// Unit and property tests for the digraph: dynamic mutation, cycle
// detection with witness extraction, ancestors, SCC, topological order.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/digraph.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace wolf {
namespace {

Digraph path_graph(int n) {
  Digraph g(n);
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

TEST(DigraphTest, AddAndQueryEdges) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.out_degree(0), 1);
  EXPECT_EQ(g.in_degree(2), 1);
}

TEST(DigraphTest, ParallelEdgesCoalesce) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(DigraphTest, RemoveEdge) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.remove_edge(0, 1);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.edge_count(), 0u);
  // Removing a non-existent edge is a no-op.
  g.remove_edge(0, 1);
}

TEST(DigraphTest, RemoveNodeDropsIncidentEdges) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.remove_node(1);
  EXPECT_EQ(g.node_count(), 2);
  EXPECT_FALSE(g.alive(1));
  EXPECT_EQ(g.edge_count(), 1u);  // only 2 -> 0 remains
  EXPECT_TRUE(g.has_edge(2, 0));
}

TEST(DigraphTest, OperationsOnDeadNodeThrow) {
  Digraph g(2);
  g.remove_node(0);
  EXPECT_THROW(g.add_edge(0, 1), CheckFailure);
  EXPECT_THROW(g.successors(0), CheckFailure);
  EXPECT_THROW(g.remove_node(0), CheckFailure);
}

TEST(DigraphTest, AddNodeGrows) {
  Digraph g;
  Digraph::Node a = g.add_node();
  Digraph::Node b = g.add_node();
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  g.add_edge(a, b);
  EXPECT_TRUE(g.has_edge(a, b));
}

TEST(DigraphTest, PathIsAcyclic) {
  Digraph g = path_graph(5);
  EXPECT_FALSE(g.has_cycle());
  EXPECT_EQ(g.find_cycle(), std::nullopt);
}

TEST(DigraphTest, SelfLoopIsACycle) {
  Digraph g(1);
  g.add_edge(0, 0);
  auto cycle = g.find_cycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 1u);
}

TEST(DigraphTest, FindCycleReturnsValidWitness) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 1);
  auto cycle = g.find_cycle();
  ASSERT_TRUE(cycle.has_value());
  // Witness must be a genuine directed cycle.
  for (std::size_t i = 0; i < cycle->size(); ++i) {
    Digraph::Node u = (*cycle)[i];
    Digraph::Node v = (*cycle)[(i + 1) % cycle->size()];
    EXPECT_TRUE(g.has_edge(u, v)) << u << "->" << v;
  }
  // And must contain the actual loop 1-2-3.
  std::set<Digraph::Node> nodes(cycle->begin(), cycle->end());
  EXPECT_EQ(nodes, (std::set<Digraph::Node>{1, 2, 3}));
}

TEST(DigraphTest, CycleBrokenByNodeRemoval) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_TRUE(g.has_cycle());
  g.remove_node(2);
  EXPECT_FALSE(g.has_cycle());
}

TEST(DigraphTest, AncestorsFollowAllPaths) {
  Digraph g(6);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(4, 3);
  // Node 5 unrelated.
  auto anc = g.ancestors(3);
  std::set<Digraph::Node> expected{0, 1, 2, 4};
  EXPECT_EQ(std::set<Digraph::Node>(anc.begin(), anc.end()), expected);
  EXPECT_TRUE(g.ancestors(0).empty());
}

TEST(DigraphTest, AncestorsExcludeSelfUnlessLoop) {
  Digraph g = path_graph(3);
  auto anc = g.ancestors(2);
  EXPECT_EQ(anc.size(), 2u);
  EXPECT_EQ(std::count(anc.begin(), anc.end(), 2), 0);
}

TEST(DigraphTest, SccDecomposition) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 0);  // {0,1}
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 2);  // {2,3}
  // 4 isolated.
  auto sccs = g.strongly_connected_components();
  std::set<std::set<Digraph::Node>> as_sets;
  for (auto& comp : sccs)
    as_sets.insert(std::set<Digraph::Node>(comp.begin(), comp.end()));
  EXPECT_EQ(as_sets.size(), 3u);
  EXPECT_TRUE(as_sets.count({0, 1}));
  EXPECT_TRUE(as_sets.count({2, 3}));
  EXPECT_TRUE(as_sets.count({4}));
}

TEST(DigraphTest, TopologicalOrderRespectsEdges) {
  Digraph g(4);
  g.add_edge(3, 1);
  g.add_edge(1, 0);
  g.add_edge(3, 2);
  auto order = g.topological_order();
  ASSERT_TRUE(order.has_value());
  auto pos = [&](Digraph::Node n) {
    return std::find(order->begin(), order->end(), n) - order->begin();
  };
  EXPECT_LT(pos(3), pos(1));
  EXPECT_LT(pos(1), pos(0));
  EXPECT_LT(pos(3), pos(2));
}

TEST(DigraphTest, TopologicalOrderNulloptOnCycle) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_EQ(g.topological_order(), std::nullopt);
}

TEST(DigraphTest, DotContainsNodesAndEdges) {
  Digraph g(2);
  g.add_edge(0, 1);
  std::string dot = g.to_dot({"alpha", "beta"});
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("alpha"), std::string::npos);
}

// ---------------------------------------------------------------- property

class GraphPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GraphPropertyTest, RandomDagHasNoCycleAndSortsTopologically) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 3 + static_cast<int>(rng.below(20));
  Digraph g(n);
  // Edges only from lower to higher id: a DAG by construction.
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      if (rng.chance(0.25)) g.add_edge(i, j);
  EXPECT_FALSE(g.has_cycle());
  auto order = g.topological_order();
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(order->size(), static_cast<std::size_t>(n));
}

TEST_P(GraphPropertyTest, BackEdgeCreatesDetectableCycle) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  const int n = 4 + static_cast<int>(rng.below(16));
  Digraph g(n);
  // A path plus random forward edges, then one back edge closing a loop.
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  for (int e = 0; e < n; ++e) {
    int i = static_cast<int>(rng.below(static_cast<std::uint64_t>(n - 1)));
    int j = i + 1 +
            static_cast<int>(rng.below(static_cast<std::uint64_t>(n - i - 1)));
    g.add_edge(i, j);
  }
  int hi = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(n - 1)));
  int lo = static_cast<int>(rng.below(static_cast<std::uint64_t>(hi)));
  g.add_edge(hi, lo);
  auto cycle = g.find_cycle();
  ASSERT_TRUE(cycle.has_value());
  for (std::size_t i = 0; i < cycle->size(); ++i)
    EXPECT_TRUE(g.has_edge((*cycle)[i], (*cycle)[(i + 1) % cycle->size()]));
}

TEST_P(GraphPropertyTest, SccAgreesWithCycleDetector) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 3);
  const int n = 3 + static_cast<int>(rng.below(12));
  Digraph g(n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      if (i != j && rng.chance(0.15)) g.add_edge(i, j);
  bool nontrivial_scc = false;
  for (const auto& comp : g.strongly_connected_components())
    if (comp.size() > 1) nontrivial_scc = true;
  bool self_loop = false;
  for (int i = 0; i < n; ++i) self_loop |= g.has_edge(i, i);
  EXPECT_EQ(g.has_cycle(), nontrivial_scc || self_loop);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphPropertyTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace wolf
