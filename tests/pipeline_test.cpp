// Integration tests: the full WOLF pipeline and the DeadlockFuzzer pipeline
// over the benchmark suite — the classifications behind Tables 1 and 2.
#include <gtest/gtest.h>

#include "baseline/df_pipeline.hpp"
#include "core/pipeline.hpp"
#include "workloads/collections.hpp"
#include "workloads/jigsaw.hpp"
#include "workloads/logging.hpp"
#include "workloads/paper_examples.hpp"

namespace wolf {
namespace {

WolfOptions fast_options(std::uint64_t seed = 2014) {
  WolfOptions options;
  options.seed = seed;
  options.replay.attempts = 8;
  return options;
}

TEST(PipelineTest, CollectionsListFullyClassified) {
  auto w = workloads::make_collections_list("ArrayList");
  WolfReport report = run_wolf(w.program, fast_options());
  ASSERT_TRUE(report.trace_recorded);
  EXPECT_EQ(report.cycles.size(), 9u);
  EXPECT_EQ(report.count_cycles(Classification::kReproduced), 9);
  EXPECT_EQ(report.count_defects(Classification::kReproduced), 6);
  EXPECT_EQ(report.false_positive_cycles(), 0);
}

TEST(PipelineTest, CollectionsMapTheta4EliminatedByGenerator) {
  auto w = workloads::make_collections_map("TreeMap");
  WolfReport report = run_wolf(w.program, fast_options());
  EXPECT_EQ(report.count_cycles(Classification::kFalseByGenerator), 1);
  EXPECT_EQ(report.count_cycles(Classification::kReproduced), 3);
  EXPECT_EQ(report.count_defects(Classification::kFalseByGenerator), 1);
  EXPECT_EQ(report.count_defects(Classification::kReproduced), 2);
}

TEST(PipelineTest, LoggingBothDefectsReproduced) {
  WolfReport report =
      run_wolf(workloads::make_logging().program, fast_options());
  EXPECT_EQ(report.count_defects(Classification::kReproduced), 2);
}

TEST(PipelineTest, JigsawClassificationSplit) {
  WolfOptions options = fast_options();
  options.max_steps = 400000;
  options.replay.attempts = 5;
  WolfReport report =
      run_wolf(workloads::make_jigsaw().program, options);
  ASSERT_TRUE(report.trace_recorded);
  EXPECT_EQ(report.defects.size(), 30u);
  EXPECT_EQ(report.count_defects(Classification::kFalseByPruner), 7);
  EXPECT_EQ(report.count_defects(Classification::kReproduced), 6);
  EXPECT_EQ(report.count_defects(Classification::kUnknown), 17);
}

TEST(PipelineTest, Figure1PrunedEndToEnd) {
  auto fig = workloads::make_figure1();
  WolfReport report = run_wolf(fig.program, fast_options());
  ASSERT_EQ(report.cycles.size(), 1u);
  EXPECT_EQ(report.cycles[0].classification,
            Classification::kFalseByPruner);
  EXPECT_EQ(report.cycles[0].prune_verdict, PruneVerdict::kFalseNotStarted);
}

TEST(PipelineTest, AnalyzeTraceSkipsRecording) {
  auto fig = workloads::make_figure4();
  auto trace = sim::record_trace(fig.program, 42);
  ASSERT_TRUE(trace.has_value());
  WolfReport report = analyze_trace(fig.program, *trace, fast_options());
  EXPECT_EQ(report.timings.record_seconds, 0.0);
  EXPECT_EQ(report.cycles.size(), 2u);
}

TEST(PipelineTest, DefectRollupPrefersReproducedOverUnknown) {
  // The map θ2/θ3 cycles share a defect; if either reproduces, the defect is
  // reproduced.
  auto w = workloads::make_collections_map("HashMap");
  WolfReport report = run_wolf(w.program, fast_options());
  for (const DefectReport& d : report.defects) {
    bool any_reproduced = false;
    for (std::size_t c : d.cycle_indices)
      any_reproduced |= report.cycles[c].classification ==
                        Classification::kReproduced;
    if (any_reproduced) {
      EXPECT_EQ(d.classification, Classification::kReproduced);
    }
  }
}

TEST(PipelineTest, DisabledPrunerLeavesCyclesUnknownNeverReproducesFalse) {
  auto fig = workloads::make_figure1();
  WolfOptions options = fast_options();
  options.enable_pruner = false;
  WolfReport report = run_wolf(fig.program, options);
  ASSERT_EQ(report.cycles.size(), 1u);
  // The infeasible cycle cannot be reproduced, only left unknown.
  EXPECT_EQ(report.cycles[0].classification, Classification::kUnknown);
}

TEST(PipelineTest, DisabledGeneratorCheckNeverReproducesTheta4) {
  auto w = workloads::make_collections_map("HashMap");
  WolfOptions options = fast_options();
  options.enable_generator_check = false;
  options.replay.attempts = 5;
  WolfReport report = run_wolf(w.program, options);
  // θ4's cycle must end unknown (it is unreachable), not reproduced.
  int unknown = report.count_cycles(Classification::kUnknown);
  int reproduced = report.count_cycles(Classification::kReproduced);
  EXPECT_EQ(unknown, 1);
  EXPECT_EQ(reproduced, 3);
}

TEST(PipelineTest, TimingsAreAccumulated) {
  auto w = workloads::make_collections_list("Stack");
  WolfReport report = run_wolf(w.program, fast_options());
  EXPECT_GT(report.timings.detect_seconds, 0.0);
  EXPECT_GT(report.timings.replay_seconds, 0.0);
  EXPECT_GT(report.timings.detection_total(), 0.0);
  EXPECT_GT(report.avg_gs_vertices, 0.0);
}

TEST(PipelineTest, SummaryMentionsEveryDefect) {
  auto w = workloads::make_collections_map("HashMap");
  WolfReport report = run_wolf(w.program, fast_options());
  std::string summary = report.summary(w.program.sites());
  EXPECT_NE(summary.find("3 defect(s)"), std::string::npos);
  EXPECT_NE(summary.find("false(generator)"), std::string::npos);
  EXPECT_NE(summary.find("reproduced"), std::string::npos);
}

// ---------------------------------------------------------------- DF side

TEST(DfPipelineTest, ReproducesDiagonalsOnLists) {
  baseline::DfOptions options;
  options.seed = 2014;
  options.replay.attempts = 8;
  auto w = workloads::make_collections_list("ArrayList");
  baseline::DfReport report =
      baseline::run_deadlock_fuzzer(w.program, options);
  ASSERT_TRUE(report.trace_recorded);
  EXPECT_EQ(report.cycles.size(), 9u);
  // The three diagonal defects are reliably reproduced; off-diagonals are
  // hit-or-miss, so only bound them.
  int tp = report.count_defects(Classification::kReproduced);
  EXPECT_GE(tp, 3);
  EXPECT_LE(tp, 6);
}

TEST(DfPipelineTest, EverythingElseStaysUnknown) {
  baseline::DfOptions options;
  options.seed = 7;
  options.replay.attempts = 4;
  auto fig = workloads::make_figure1();
  baseline::DfReport report =
      baseline::run_deadlock_fuzzer(fig.program, options);
  ASSERT_EQ(report.cycles.size(), 1u);
  // DeadlockFuzzer has no pruner; the infeasible cycle stays unknown.
  EXPECT_EQ(report.cycles[0].classification, Classification::kUnknown);
  EXPECT_EQ(report.count_defects(Classification::kUnknown), 1);
}

TEST(DfPipelineTest, AnalyzeTraceVariantWorks) {
  auto w = workloads::make_collections_map("HashMap");
  auto trace = sim::record_trace(w.program, 99);
  ASSERT_TRUE(trace.has_value());
  baseline::DfOptions options;
  options.replay.attempts = 6;
  baseline::DfReport report =
      baseline::analyze_trace_df(w.program, *trace, options);
  EXPECT_EQ(report.cycles.size(), 4u);
}

}  // namespace
}  // namespace wolf
