#include "testutil.hpp"

#include <algorithm>

namespace wolf::test {

namespace {

// Emits one well-nested lock region for `thread`, choosing locks uniformly
// (re-acquiring a held lock exercises re-entrancy on purpose).
void emit_block(sim::Program& p, Rng& rng, const RandomProgramConfig& config,
                ThreadId thread, const std::vector<LockId>& locks, int depth,
                int& site_counter) {
  auto fresh_site = [&] {
    return p.site("rand.t" + std::to_string(thread), site_counter++);
  };
  LockId lock = locks[rng.index(locks)];
  p.lock(thread, lock, fresh_site());
  if (depth < config.max_nesting && rng.chance(config.nest_probability)) {
    emit_block(p, rng, config, thread, locks, depth + 1, site_counter);
  } else if (rng.chance(0.5)) {
    p.compute(thread, fresh_site());
  }
  p.unlock(thread, lock, fresh_site());
}

}  // namespace

sim::Program random_program(Rng& rng, const RandomProgramConfig& config) {
  sim::Program p;
  p.name = "random";
  int site_counter = 0;

  std::vector<LockId> locks;
  for (int l = 0; l < config.locks; ++l)
    locks.push_back(
        p.add_lock("L" + std::to_string(l), p.site("rand.alloc", l)));

  ThreadId main = p.add_thread("main");
  std::vector<ThreadId> workers;
  for (int w = 0; w < config.workers; ++w)
    workers.push_back(p.add_thread("w" + std::to_string(w)));

  // Worker bodies.
  for (ThreadId w : workers) {
    const int blocks = 1 + static_cast<int>(rng.below(
                               static_cast<std::uint64_t>(
                                   config.blocks_per_worker)));
    for (int b = 0; b < blocks; ++b)
      emit_block(p, rng, config, w, locks, 1, site_counter);
  }

  // Start/join topology: worker i is started either by main or (sometimes)
  // by worker i-1 *after* that worker's lock blocks — the start-ordering
  // structure the Pruner reasons about; main sometimes joins a worker before
  // starting the next, creating non-overlap regions.
  std::vector<ThreadId> joined;
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const bool chained =
        i > 0 && rng.chance(config.chained_start_probability);
    if (chained) {
      sim::Op op;
      op.code = sim::OpCode::kStart;
      op.target_thread = workers[i];
      op.site = p.site("rand.chain", site_counter++);
      p.emit(workers[i - 1], op);
    } else {
      p.start(main, workers[i],
              p.site("rand.spawn", site_counter++));
      if (rng.chance(config.early_join_probability)) {
        p.join(main, workers[i], p.site("rand.earlyjoin", site_counter++));
        joined.push_back(workers[i]);
      }
    }
  }
  for (ThreadId w : workers) {
    if (std::find(joined.begin(), joined.end(), w) == joined.end())
      p.join(main, w, p.site("rand.join", site_counter++));
  }

  p.finalize();
  return p;
}

std::vector<SiteId> deadlock_signature(const sim::RunResult& result) {
  std::vector<SiteId> sig;
  sig.reserve(result.deadlock_cycle.size());
  for (const sim::BlockedAt& b : result.deadlock_cycle)
    sig.push_back(b.index.site);
  std::sort(sig.begin(), sig.end());
  return sig;
}

}  // namespace wolf::test
