// Cross-component property tests over randomly generated programs,
// validated against the exhaustive schedule explorer:
//
//   completeness — every deadlock reachable in ANY schedule corresponds to a
//                  detected cycle of a single recorded trace (branch-free
//                  programs execute all their operations in a completed run);
//   soundness    — every cycle the Pruner or the Generator rules out is
//                  unreachable;
//   consistency  — every cycle the Replayer reproduces is reachable, and a
//                  reproduced run's blocked sites equal the cycle signature;
//   determinism  — recording with the same seed yields the same trace;
//   round-trip   — randomized traces survive every serialization format
//                  exactly, and v3 salvage after truncation at any block
//                  boundary recovers precisely the intact whole blocks.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/generator.hpp"
#include "core/pipeline.hpp"
#include "core/pruner.hpp"
#include "explore/explorer.hpp"
#include "testutil.hpp"
#include "trace/serialize.hpp"
#include "trace/wire.hpp"

namespace wolf {
namespace {

struct Case {
  sim::Program program;
  Trace trace;
  Detection detection;
  explore::ExploreResult explored;
};

// Builds the full analysis for one seed; nullopt when recording failed or
// the state space exceeded the budget (both are rare at this size).
std::optional<Case> build_case(int seed_index) {
  Rng rng(static_cast<std::uint64_t>(seed_index) * 2654435761ULL + 17);
  test::RandomProgramConfig config;
  config.workers = 2 + static_cast<int>(rng.below(2));
  config.locks = 2 + static_cast<int>(rng.below(2));
  config.blocks_per_worker = 2;
  Case c{test::random_program(rng, config), {}, {}, {}};

  auto trace = sim::record_trace(c.program, rng(), 40);
  if (!trace.has_value()) return std::nullopt;
  c.trace = std::move(*trace);
  c.detection = detect(c.trace);

  explore::ExploreOptions options;
  options.max_states = 500000;
  c.explored = explore::explore(c.program, options);
  if (!c.explored.exhausted) return std::nullopt;
  return c;
}

class WolfPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(WolfPropertyTest, DetectorIsCompleteForReachableDeadlocks) {
  auto c = build_case(GetParam());
  if (!c) GTEST_SKIP() << "recording or exploration budget exceeded";

  std::set<DefectSignature> detected;
  for (const PotentialDeadlock& cycle : c->detection.cycles)
    detected.insert(signature_of(cycle, c->detection.dep));

  for (const auto& sig : c->explored.deadlock_signatures) {
    if (sig.empty()) continue;  // join stall, not a lock deadlock
    EXPECT_TRUE(detected.count(sig) != 0)
        << "reachable deadlock at signature size " << sig.size()
        << " was not detected";
  }
}

TEST_P(WolfPropertyTest, PrunerAndGeneratorAreSound) {
  auto c = build_case(GetParam());
  if (!c) GTEST_SKIP() << "recording or exploration budget exceeded";

  auto verdicts = prune(c->detection);
  for (std::size_t i = 0; i < c->detection.cycles.size(); ++i) {
    DefectSignature sig = signature_of(c->detection.cycles[i],
                                       c->detection.dep);
    if (is_false(verdicts[i])) {
      EXPECT_FALSE(c->explored.deadlock_reachable_at(sig))
          << "Pruner eliminated a reachable deadlock";
      continue;
    }
    GeneratorResult gen = generate(c->detection.cycles[i], c->detection.dep);
    if (!gen.feasible) {
      EXPECT_FALSE(c->explored.deadlock_reachable_at(sig))
          << "Generator eliminated a reachable deadlock";
    }
  }
}

TEST_P(WolfPropertyTest, ReproducedCyclesAreReachable) {
  auto c = build_case(GetParam());
  if (!c) GTEST_SKIP() << "recording or exploration budget exceeded";

  auto verdicts = prune(c->detection);
  for (std::size_t i = 0; i < c->detection.cycles.size(); ++i) {
    if (is_false(verdicts[i])) continue;
    GeneratorResult gen = generate(c->detection.cycles[i], c->detection.dep);
    if (!gen.feasible) continue;
    ReplayOptions options;
    options.attempts = 6;
    options.seed = static_cast<std::uint64_t>(GetParam()) + i;
    ReplayStats stats = replay(c->program, c->detection.cycles[i],
                               c->detection.dep, gen.gs, options);
    if (stats.reproduced()) {
      DefectSignature sig = signature_of(c->detection.cycles[i],
                                         c->detection.dep);
      EXPECT_TRUE(c->explored.deadlock_reachable_at(sig))
          << "Replayer 'reproduced' an unreachable deadlock";
    }
  }
}

TEST_P(WolfPropertyTest, RecordingIsDeterministicPerSeed) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 3);
  test::RandomProgramConfig config;
  config.workers = 2;
  sim::Program program = test::random_program(rng, config);
  const std::uint64_t seed = rng();
  auto t1 = sim::record_trace(program, seed, 40);
  auto t2 = sim::record_trace(program, seed, 40);
  ASSERT_EQ(t1.has_value(), t2.has_value());
  if (t1) {
    EXPECT_EQ(t1->events, t2->events);
  }
}

TEST_P(WolfPropertyTest, DsigmaStructuralInvariants) {
  auto c = build_case(GetParam());
  if (!c) GTEST_SKIP();
  for (const LockTuple& t : c->detection.dep.tuples) {
    // Context = lockset acquisitions plus the acquisition itself.
    EXPECT_EQ(t.context.size(), t.lockset.size() + 1);
    EXPECT_EQ(t.acquire_index().thread, t.thread);
    EXPECT_GE(t.tau, 1);
    // Lockset entries are unique (re-entrant acquisitions never re-enter).
    std::set<LockId> unique_locks(t.lockset.begin(), t.lockset.end());
    EXPECT_EQ(unique_locks.size(), t.lockset.size());
    // The acquired lock is never already held.
    EXPECT_FALSE(t.holds(t.lock));
  }
}

TEST_P(WolfPropertyTest, FullPipelineNeverMisclassifiesOnRandomPrograms) {
  auto c = build_case(GetParam());
  if (!c) GTEST_SKIP();
  WolfOptions options;
  options.seed = static_cast<std::uint64_t>(GetParam()) + 1;
  options.replay.attempts = 5;
  WolfReport report = analyze_trace(c->program, c->trace, options);
  for (const CycleReport& cycle : report.cycles) {
    DefectSignature sig = signature_of(
        report.detection.cycles[cycle.cycle_index], report.detection.dep);
    switch (cycle.classification) {
      case Classification::kFalseByPruner:
      case Classification::kFalseByGenerator:
        EXPECT_FALSE(c->explored.deadlock_reachable_at(sig));
        break;
      case Classification::kReproduced:
        EXPECT_TRUE(c->explored.deadlock_reachable_at(sig));
        break;
      case Classification::kUnknown:
        break;  // no claim made
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WolfPropertyTest, ::testing::Range(0, 30));

// --------------------------------------------------- serialization fuzzing

// A random but well-formed trace: strictly increasing seqs with random gaps
// (salvaged traces are sparse), random kinds and field values, sized to span
// `blocks` v3 blocks plus a random partial tail. Lock and thread references
// respect the discipline salvage validates (releases match a held lock,
// start/join name a real thread) so salvaging any prefix returns it whole.
Trace random_trace(Rng& rng, std::size_t blocks) {
  Trace trace;
  const std::size_t n = blocks * wire::kBlockEvents + rng.below(64);
  std::uint64_t seq = rng.below(8);
  std::unordered_map<ThreadId, std::vector<LockId>> held;
  for (std::size_t i = 0; i < n; ++i) {
    Event e;
    e.seq = seq;
    seq += 1 + rng.below(5);
    e.kind = static_cast<EventKind>(rng.below(6));
    e.thread = static_cast<ThreadId>(rng.below(64));
    e.site = rng.chance(0.1) ? kInvalidSite
                             : static_cast<SiteId>(rng.below(1000));
    e.occurrence = static_cast<std::int32_t>(rng.below(100000));
    e.lock = rng.chance(0.2) ? kInvalidLock
                             : static_cast<LockId>(rng.below(32));
    e.other = rng.chance(0.5) ? kInvalidThread
                              : static_cast<ThreadId>(rng.below(64));
    if (e.kind == EventKind::kThreadStart || e.kind == EventKind::kThreadJoin)
      e.other = static_cast<ThreadId>(rng.below(64));
    if (e.kind == EventKind::kLockAcquire) {
      if (e.lock == kInvalidLock) e.lock = static_cast<LockId>(rng.below(32));
      held[e.thread].push_back(e.lock);
    } else if (e.kind == EventKind::kLockRelease) {
      auto& stack = held[e.thread];
      if (stack.empty()) {
        e.kind = EventKind::kLockAcquire;
        if (e.lock == kInvalidLock) e.lock = static_cast<LockId>(rng.below(32));
        stack.push_back(e.lock);
      } else {
        const std::size_t pick = rng.below(stack.size());
        e.lock = stack[pick];
        stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(pick));
      }
    }
    trace.events.push_back(e);
  }
  return trace;
}

class SerializationPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SerializationPropertyTest, RandomTraceRoundTripsInEveryFormat) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 0x9e3779b9ULL + 101);
  Trace original = random_trace(rng, rng.below(3));
  for (TraceFormat format :
       {TraceFormat::kV1, TraceFormat::kV2, TraceFormat::kV3}) {
    std::string error;
    auto parsed = trace_from_string(trace_to_string(original, format), &error);
    ASSERT_TRUE(parsed.has_value())
        << to_string(format) << " round-trip failed: " << error;
    EXPECT_EQ(parsed->events, original.events) << to_string(format);
  }
}

TEST_P(SerializationPropertyTest, ConversionPreservesChecksumAndEvents) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 48271ULL + 7);
  Trace original = random_trace(rng, 1);
  const std::uint64_t checksum = trace_checksum(original);
  // v2 -> v3 -> v2: what `wolf convert` does, at the library level.
  auto as_v3 = trace_from_string(trace_to_string(original, TraceFormat::kV2));
  ASSERT_TRUE(as_v3.has_value());
  auto back = trace_from_string(trace_to_string(*as_v3, TraceFormat::kV3));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->events, original.events);
  EXPECT_EQ(trace_checksum(*back), checksum);
}

TEST_P(SerializationPropertyTest, TruncationAtEveryBlockBoundary) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6364136223846793005ULL + 9);
  Trace original = random_trace(rng, 2);  // 2 full blocks + partial tail
  const std::string bytes = trace_to_string(original, TraceFormat::kV3);

  // Walk the framing to find every block's end offset and event count.
  std::vector<std::size_t> block_end;
  std::vector<std::uint64_t> block_count;
  wire::ByteReader r(bytes);
  r.p += sizeof wire::kMagicV3;
  for (;;) {
    std::uint8_t tag = 0;
    ASSERT_TRUE(r.get_u8(tag));
    if (tag == static_cast<std::uint8_t>(wire::kFooterTag)) break;
    std::uint64_t count = 0, payload = 0;
    ASSERT_TRUE(r.get_varint(count));
    ASSERT_TRUE(r.get_varint(payload));
    r.p += payload + 8;
    block_count.push_back(count);
    block_end.push_back(
        bytes.size() - static_cast<std::size_t>(r.end - r.p));
  }

  // Truncating cleanly after block k keeps exactly blocks 0..k.
  std::uint64_t kept = 0;
  for (std::size_t k = 0; k < block_end.size(); ++k) {
    kept += block_count[k];
    const std::string cut = bytes.substr(0, block_end[k]);

    std::string error;
    EXPECT_EQ(trace_from_string(cut, &error), std::nullopt);
    EXPECT_NE(error.find("missing wolf-trace v3 footer"), std::string::npos);

    SalvageReport report = salvage_trace_from_string(cut);
    EXPECT_FALSE(report.complete);
    ASSERT_EQ(report.trace.size(), kept) << "truncated after block " << k;
    for (std::size_t i = 0; i < kept; ++i)
      EXPECT_EQ(report.trace.events[i], original.events[i]);
  }

  // Truncating mid-block additionally drops the ragged block.
  for (std::size_t k = 0; k < block_end.size(); ++k) {
    const std::size_t start = k == 0 ? sizeof wire::kMagicV3
                                     : block_end[k - 1];
    const std::size_t cut_at =
        start + 1 + rng.below(block_end[k] - start - 1);
    SalvageReport report = salvage_trace_from_string(bytes.substr(0, cut_at));
    EXPECT_FALSE(report.complete);
    std::uint64_t whole = 0;
    for (std::size_t j = 0; j < k; ++j) whole += block_count[j];
    EXPECT_EQ(report.trace.size(), whole) << "cut inside block " << k;
  }
}

// Exhaustive truncation: cut the serialized bytes at EVERY offset, in all
// three formats. Salvage must never crash, must return a prefix of the
// original events, and must either claim completeness honestly (v2/v3 carry
// footers, so only the untruncated buffer may claim complete; v1 has no
// footer, so any newline-boundary cut is indistinguishable from a complete
// file) or say what was dropped in a diagnostic.
TEST_P(SerializationPropertyTest, TruncationAtEveryByteOffset) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 0x2545f4914f6cdd1dULL + 3);
  // Small traces keep offsets * formats tractable (a few hundred KB of
  // salvage work per seed); block-boundary coverage for big traces is above.
  Trace original = random_trace(rng, 0);
  for (TraceFormat format :
       {TraceFormat::kV1, TraceFormat::kV2, TraceFormat::kV3}) {
    const std::string bytes = trace_to_string(original, format);
    const bool text = format != TraceFormat::kV3;
    // Indexed v3 = the unindexed encoding + a post-footer index section, so
    // the cut that removes exactly the index leaves a complete, valid,
    // index-free trace — the one prefix where claiming completeness is
    // honest (same carve-out as trace_test's index truncation suite).
    const std::size_t plain_size =
        format == TraceFormat::kV3
            ? trace_to_string(original, format, {.index = false}).size()
            : bytes.size();
    for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
      SalvageReport report = salvage_trace_from_string(bytes.substr(0, cut));
      ASSERT_LE(report.trace.size(), original.events.size())
          << to_string(format) << " cut at " << cut;
      // Prefix property. Text formats carry no per-event checksum, so a
      // line torn inside a trailing multi-digit field can still parse —
      // the FINAL salvaged event may be a torn variant of the original.
      // v3's block checksums close exactly that hole: every survivor is
      // bit-exact.
      const std::size_t exact = report.trace.size() == 0 ? 0
                                : text ? report.trace.size() - 1
                                       : report.trace.size();
      for (std::size_t i = 0; i < exact; ++i) {
        ASSERT_EQ(report.trace.events[i], original.events[i])
            << to_string(format) << " cut at " << cut
            << ": salvage returned a non-prefix";
      }
      if (text && report.trace.size() > 0) {
        // Even a torn final event keeps the original's seq prefix order.
        ASSERT_LE(report.trace.events.back().seq,
                  original.events[report.trace.size() - 1].seq)
            << to_string(format) << " cut at " << cut;
      }
      // Completeness claims. v2/v3 end with a footer the cut removed, so
      // any proper truncation must be reported incomplete. v1 has no
      // footer: a cut keeping only whole parseable lines is genuinely
      // indistinguishable from a complete file, and that is the documented
      // reason v2 grew one.
      // (A cut that removes only the footer's trailing newline leaves the
      // footer verifiable, so completeness is genuinely true there.)
      if (format != TraceFormat::kV1 &&
          bytes.compare(cut, std::string::npos, "\n") != 0 &&
          cut < bytes.size() && cut != plain_size) {
        ASSERT_FALSE(report.complete)
            << to_string(format) << " cut at " << cut
            << " claimed completeness without its footer";
      }
      // Anything detectably dropped must be named: the diagnostics point
      // at the torn line (text) or the damaged/missing block/footer (v3).
      if (report.trace.size() < original.events.size() && !report.complete)
        ASSERT_FALSE(report.diagnostics.empty())
            << to_string(format) << " cut at " << cut
            << " dropped events without a diagnostic";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationPropertyTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace wolf
