// Cross-component property tests over randomly generated programs,
// validated against the exhaustive schedule explorer:
//
//   completeness — every deadlock reachable in ANY schedule corresponds to a
//                  detected cycle of a single recorded trace (branch-free
//                  programs execute all their operations in a completed run);
//   soundness    — every cycle the Pruner or the Generator rules out is
//                  unreachable;
//   consistency  — every cycle the Replayer reproduces is reachable, and a
//                  reproduced run's blocked sites equal the cycle signature;
//   determinism  — recording with the same seed yields the same trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/generator.hpp"
#include "core/pipeline.hpp"
#include "core/pruner.hpp"
#include "explore/explorer.hpp"
#include "testutil.hpp"

namespace wolf {
namespace {

struct Case {
  sim::Program program;
  Trace trace;
  Detection detection;
  explore::ExploreResult explored;
};

// Builds the full analysis for one seed; nullopt when recording failed or
// the state space exceeded the budget (both are rare at this size).
std::optional<Case> build_case(int seed_index) {
  Rng rng(static_cast<std::uint64_t>(seed_index) * 2654435761ULL + 17);
  test::RandomProgramConfig config;
  config.workers = 2 + static_cast<int>(rng.below(2));
  config.locks = 2 + static_cast<int>(rng.below(2));
  config.blocks_per_worker = 2;
  Case c{test::random_program(rng, config), {}, {}, {}};

  auto trace = sim::record_trace(c.program, rng(), 40);
  if (!trace.has_value()) return std::nullopt;
  c.trace = std::move(*trace);
  c.detection = detect(c.trace);

  explore::ExploreOptions options;
  options.max_states = 500000;
  c.explored = explore::explore(c.program, options);
  if (!c.explored.exhausted) return std::nullopt;
  return c;
}

class WolfPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(WolfPropertyTest, DetectorIsCompleteForReachableDeadlocks) {
  auto c = build_case(GetParam());
  if (!c) GTEST_SKIP() << "recording or exploration budget exceeded";

  std::set<DefectSignature> detected;
  for (const PotentialDeadlock& cycle : c->detection.cycles)
    detected.insert(signature_of(cycle, c->detection.dep));

  for (const auto& sig : c->explored.deadlock_signatures) {
    if (sig.empty()) continue;  // join stall, not a lock deadlock
    EXPECT_TRUE(detected.count(sig) != 0)
        << "reachable deadlock at signature size " << sig.size()
        << " was not detected";
  }
}

TEST_P(WolfPropertyTest, PrunerAndGeneratorAreSound) {
  auto c = build_case(GetParam());
  if (!c) GTEST_SKIP() << "recording or exploration budget exceeded";

  auto verdicts = prune(c->detection);
  for (std::size_t i = 0; i < c->detection.cycles.size(); ++i) {
    DefectSignature sig = signature_of(c->detection.cycles[i],
                                       c->detection.dep);
    if (is_false(verdicts[i])) {
      EXPECT_FALSE(c->explored.deadlock_reachable_at(sig))
          << "Pruner eliminated a reachable deadlock";
      continue;
    }
    GeneratorResult gen = generate(c->detection.cycles[i], c->detection.dep);
    if (!gen.feasible) {
      EXPECT_FALSE(c->explored.deadlock_reachable_at(sig))
          << "Generator eliminated a reachable deadlock";
    }
  }
}

TEST_P(WolfPropertyTest, ReproducedCyclesAreReachable) {
  auto c = build_case(GetParam());
  if (!c) GTEST_SKIP() << "recording or exploration budget exceeded";

  auto verdicts = prune(c->detection);
  for (std::size_t i = 0; i < c->detection.cycles.size(); ++i) {
    if (is_false(verdicts[i])) continue;
    GeneratorResult gen = generate(c->detection.cycles[i], c->detection.dep);
    if (!gen.feasible) continue;
    ReplayOptions options;
    options.attempts = 6;
    options.seed = static_cast<std::uint64_t>(GetParam()) + i;
    ReplayStats stats = replay(c->program, c->detection.cycles[i],
                               c->detection.dep, gen.gs, options);
    if (stats.reproduced()) {
      DefectSignature sig = signature_of(c->detection.cycles[i],
                                         c->detection.dep);
      EXPECT_TRUE(c->explored.deadlock_reachable_at(sig))
          << "Replayer 'reproduced' an unreachable deadlock";
    }
  }
}

TEST_P(WolfPropertyTest, RecordingIsDeterministicPerSeed) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 3);
  test::RandomProgramConfig config;
  config.workers = 2;
  sim::Program program = test::random_program(rng, config);
  const std::uint64_t seed = rng();
  auto t1 = sim::record_trace(program, seed, 40);
  auto t2 = sim::record_trace(program, seed, 40);
  ASSERT_EQ(t1.has_value(), t2.has_value());
  if (t1) {
    EXPECT_EQ(t1->events, t2->events);
  }
}

TEST_P(WolfPropertyTest, DsigmaStructuralInvariants) {
  auto c = build_case(GetParam());
  if (!c) GTEST_SKIP();
  for (const LockTuple& t : c->detection.dep.tuples) {
    // Context = lockset acquisitions plus the acquisition itself.
    EXPECT_EQ(t.context.size(), t.lockset.size() + 1);
    EXPECT_EQ(t.acquire_index().thread, t.thread);
    EXPECT_GE(t.tau, 1);
    // Lockset entries are unique (re-entrant acquisitions never re-enter).
    std::set<LockId> unique_locks(t.lockset.begin(), t.lockset.end());
    EXPECT_EQ(unique_locks.size(), t.lockset.size());
    // The acquired lock is never already held.
    EXPECT_FALSE(t.holds(t.lock));
  }
}

TEST_P(WolfPropertyTest, FullPipelineNeverMisclassifiesOnRandomPrograms) {
  auto c = build_case(GetParam());
  if (!c) GTEST_SKIP();
  WolfOptions options;
  options.seed = static_cast<std::uint64_t>(GetParam()) + 1;
  options.replay.attempts = 5;
  WolfReport report = analyze_trace(c->program, c->trace, options);
  for (const CycleReport& cycle : report.cycles) {
    DefectSignature sig = signature_of(
        report.detection.cycles[cycle.cycle_index], report.detection.dep);
    switch (cycle.classification) {
      case Classification::kFalseByPruner:
      case Classification::kFalseByGenerator:
        EXPECT_FALSE(c->explored.deadlock_reachable_at(sig));
        break;
      case Classification::kReproduced:
        EXPECT_TRUE(c->explored.deadlock_reachable_at(sig));
        break;
      case Classification::kUnknown:
        break;  // no claim made
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WolfPropertyTest, ::testing::Range(0, 30));

}  // namespace
}  // namespace wolf
