// Tests for the batch replayer (core/batch_replay.hpp): a single-member
// batch must be trial-for-trial identical to the independent Algorithm-4
// replayer (same seed stream, same run loop), a multi-cycle batch must still
// reproduce every member while sharing a non-empty prefix, and the step
// accounting must show the de-duplicated work.
#include <gtest/gtest.h>

#include <vector>

#include "core/batch_replay.hpp"
#include "core/pipeline.hpp"
#include "sim/scheduler.hpp"
#include "workloads/collections.hpp"
#include "workloads/paper_examples.hpp"

namespace wolf {
namespace {

Detection detect_program(const sim::Program& program, std::uint64_t seed) {
  auto trace = sim::record_trace(program, seed);
  EXPECT_TRUE(trace.has_value());
  return detect(*trace);
}

// Builds Gs for every feasible cycle of `det`; `gens` owns the graphs the
// returned members point into.
std::vector<BatchReplayMember> feasible_members(
    const Detection& det, std::vector<GeneratorResult>& gens) {
  gens.clear();
  gens.reserve(det.cycles.size());
  std::vector<const PotentialDeadlock*> cycles;
  for (const PotentialDeadlock& cycle : det.cycles) {
    GeneratorResult gen = generate(cycle, det.dep);
    if (!gen.feasible) continue;
    gens.push_back(std::move(gen));
    cycles.push_back(&cycle);
  }
  std::vector<BatchReplayMember> members;
  for (std::size_t i = 0; i < gens.size(); ++i)
    members.push_back(BatchReplayMember{cycles[i], &gens[i].gs});
  return members;
}

TEST(BatchReplayTest, EmptyBatchReportsNothing) {
  auto w = workloads::make_collections_list("ArrayList");
  Detection det = detect_program(w.program, 11);
  BatchReplayReport report =
      replay_batch(w.program, det.dep, {}, ReplayOptions{});
  EXPECT_TRUE(report.stats.empty());
  EXPECT_EQ(report.attempts, 0);
  EXPECT_EQ(report.shared_steps, 0u);
  EXPECT_EQ(report.replayed_steps, 0u);
  EXPECT_EQ(report.naive_steps, 0u);
  EXPECT_EQ(report.savings(), 0.0);
}

// With one member there is nothing to multiplex: the batch driver must make
// the exact trials replay() makes — same per-attempt seed stream, same run
// loop — so the stats agree field for field.
TEST(BatchReplayTest, SingleMemberBatchMatchesIndependentReplay) {
  auto w = workloads::make_collections_list("ArrayList");
  Detection det = detect_program(w.program, 11);
  std::vector<GeneratorResult> gens;
  std::vector<BatchReplayMember> members = feasible_members(det, gens);
  ASSERT_FALSE(members.empty());

  ReplayOptions options;
  options.attempts = 6;
  options.seed = 17;
  options.stop_on_first_hit = false;

  for (std::size_t i = 0; i < members.size(); ++i) {
    SCOPED_TRACE(i);
    ReplayStats independent = replay(w.program, *members[i].cycle, det.dep,
                                     *members[i].gs, options);
    BatchReplayReport report =
        replay_batch(w.program, det.dep, {members[i]}, options);
    ASSERT_EQ(report.stats.size(), 1u);
    const ReplayStats& batched = report.stats[0];
    EXPECT_EQ(batched.attempts, independent.attempts);
    EXPECT_EQ(batched.hits, independent.hits);
    EXPECT_EQ(batched.other_deadlocks, independent.other_deadlocks);
    EXPECT_EQ(batched.no_deadlocks, independent.no_deadlocks);
    EXPECT_EQ(batched.step_limits, independent.step_limits);
    EXPECT_EQ(batched.timeouts, independent.timeouts);
    // A lone member shares with nobody: no prefix is counted as shared and
    // nothing is saved.
    EXPECT_EQ(report.shared_steps, 0u);
    EXPECT_EQ(report.replayed_steps, report.naive_steps);
  }
}

TEST(BatchReplayTest, BatchReproducesEveryArrayListCycle) {
  auto w = workloads::make_collections_list("ArrayList");
  Detection det = detect_program(w.program, 11);
  std::vector<GeneratorResult> gens;
  std::vector<BatchReplayMember> members = feasible_members(det, gens);
  ASSERT_GE(members.size(), 2u);

  ReplayOptions options;
  options.attempts = 20;
  options.seed = 17;
  BatchReplayReport report = replay_batch(w.program, det.dep, members, options);

  ASSERT_EQ(report.stats.size(), members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    EXPECT_TRUE(report.stats[i].reproduced())
        << "failed to reproduce " << members[i].cycle->to_string(det.dep);
  }
  // The members rode a common prefix at least once, and de-duplicating it
  // must make the batch strictly cheaper than the sum of its forks.
  EXPECT_GT(report.shared_steps, 0u);
  EXPECT_LT(report.replayed_steps, report.naive_steps);
  EXPECT_GT(report.savings(), 0.0);
  EXPECT_LE(report.savings(), 1.0);
}

TEST(BatchReplayTest, HitRateModeDrivesEveryAttemptForEveryMember) {
  auto fig = workloads::make_figure4();
  Detection det = detect_program(fig.program, 42);
  std::vector<GeneratorResult> gens;
  std::vector<BatchReplayMember> members = feasible_members(det, gens);
  ASSERT_FALSE(members.empty());

  ReplayOptions options;
  options.attempts = 5;
  options.seed = 9;
  options.stop_on_first_hit = false;
  BatchReplayReport report =
      replay_batch(fig.program, det.dep, members, options);
  EXPECT_EQ(report.attempts, 5);
  for (const ReplayStats& stats : report.stats) EXPECT_EQ(stats.attempts, 5);
  // The batch can only ever remove duplicated prefix work, never add steps.
  EXPECT_LE(report.replayed_steps, report.naive_steps);
}

// Stopping on the first hit must retire members from later attempts: a
// member that reproduced early records fewer attempts than the batch drove.
TEST(BatchReplayTest, StopOnFirstHitRetiresMembersIndividually) {
  auto w = workloads::make_collections_list("ArrayList");
  Detection det = detect_program(w.program, 11);
  std::vector<GeneratorResult> gens;
  std::vector<BatchReplayMember> members = feasible_members(det, gens);
  ASSERT_GE(members.size(), 2u);

  ReplayOptions options;
  options.attempts = 20;
  options.seed = 3;
  options.stop_on_first_hit = true;
  BatchReplayReport report = replay_batch(w.program, det.dep, members, options);
  for (const ReplayStats& stats : report.stats) {
    EXPECT_LE(stats.attempts, report.attempts);
    if (stats.reproduced()) {
      EXPECT_EQ(stats.hits, 1);
    }
  }
}

}  // namespace
}  // namespace wolf
