// Differential tests of the cycle enumeration engines (DESIGN.md §12):
//
//   equivalence — the SCC engine (serial and parallel) emits the
//                 bit-identical cycle sequence of the reference DFS, over
//                 fixed workloads and randomized programs, with and without
//                 magic_prune, and at the max_cycles cap;
//   clock cut   — with clock_prune_during_search, the emitted cycles equal
//                 the order-preserving subsequence of the full enumeration
//                 that survives Algorithm 2's prune();
//   truncation  — Detection::truncated/cycle_cap surface the cap identically
//                 at every engine and jobs level.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/cycle_engine.hpp"
#include "core/detector.hpp"
#include "core/pruner.hpp"
#include "sim/scheduler.hpp"
#include "support/rng.hpp"
#include "testutil.hpp"
#include "workloads/paper_examples.hpp"
#include "workloads/suite.hpp"

namespace wolf {
namespace {

DetectorOptions options_for(CycleEngine engine, int jobs, bool magic,
                            bool clock_prune = false,
                            std::size_t max_cycles = 100000) {
  DetectorOptions options;
  options.engine = engine;
  options.jobs = jobs;
  options.magic_prune = magic;
  options.clock_prune_during_search = clock_prune;
  options.max_cycles = max_cycles;
  return options;
}

void expect_same_cycles(const std::vector<PotentialDeadlock>& a,
                        const std::vector<PotentialDeadlock>& b,
                        const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].tuple_idx, b[i].tuple_idx) << what << " cycle " << i;
}

// Detections must agree bit-for-bit in everything enumeration controls.
void expect_equivalent(const Detection& a, const Detection& b,
                       const char* what) {
  expect_same_cycles(a.cycles, b.cycles, what);
  EXPECT_EQ(a.truncated, b.truncated) << what;
  EXPECT_EQ(a.cycle_cap, b.cycle_cap) << what;
  ASSERT_EQ(a.defects.size(), b.defects.size()) << what;
  for (std::size_t i = 0; i < a.defects.size(); ++i) {
    EXPECT_EQ(a.defects[i].signature, b.defects[i].signature) << what;
    EXPECT_EQ(a.defects[i].cycle_idx, b.defects[i].cycle_idx) << what;
  }
}

// Runs reference vs scc vs arena-scc (each at jobs=1 and jobs=4) on one
// trace and asserts bit-identity; returns the reference detection for
// further checks.
Detection check_engines_agree(const Trace& trace, bool magic,
                              std::size_t max_cycles = 100000) {
  Detection ref = detect(
      trace, options_for(CycleEngine::kReference, 1, magic, false, max_cycles));
  Detection scc1 = detect(
      trace, options_for(CycleEngine::kScc, 1, magic, false, max_cycles));
  Detection scc4 = detect(
      trace, options_for(CycleEngine::kScc, 4, magic, false, max_cycles));
  Detection arena1 = detect(
      trace, options_for(CycleEngine::kArenaScc, 1, magic, false, max_cycles));
  Detection arena4 = detect(
      trace, options_for(CycleEngine::kArenaScc, 4, magic, false, max_cycles));
  expect_equivalent(ref, scc1, "reference vs scc jobs=1");
  expect_equivalent(ref, scc4, "reference vs scc jobs=4");
  expect_equivalent(scc1, scc4, "scc jobs=1 vs jobs=4");
  expect_equivalent(ref, arena1, "reference vs arena jobs=1");
  expect_equivalent(scc1, arena1, "scc vs arena jobs=1");
  expect_equivalent(arena1, arena4, "arena jobs=1 vs jobs=4");
  return ref;
}

Trace record_workload(const char* name) {
  for (workloads::Benchmark& b : workloads::standard_suite())
    if (b.name == name) {
      auto trace = sim::record_trace(b.program, 2014, 60);
      EXPECT_TRUE(trace.has_value()) << name;
      return trace.value_or(Trace{});
    }
  ADD_FAILURE() << "unknown workload " << name;
  return {};
}

TEST(CycleEngineTest, EnginesAgreeOnSuiteWorkloads) {
  for (const char* name : {"HashMap", "ArrayList", "TreeMap", "Stack"}) {
    SCOPED_TRACE(name);
    Trace trace = record_workload(name);
    if (trace.empty()) continue;
    Detection ref = check_engines_agree(trace, /*magic=*/false);
    check_engines_agree(trace, /*magic=*/true);
    EXPECT_FALSE(ref.truncated);
    EXPECT_EQ(ref.cycle_cap, 0u);
  }
}

TEST(CycleEngineTest, EnginesAgreeOnPhilosophersRing) {
  // A 5-ring: one big nontrivial SCC, cycle length = ring size.
  auto program = workloads::make_philosophers(5).program;
  auto trace = sim::record_trace(program, 7, 60);
  ASSERT_TRUE(trace.has_value());
  Detection ref = check_engines_agree(*trace, /*magic=*/false);
  EXPECT_FALSE(ref.cycles.empty());
}

TEST(CycleEngineTest, TruncationIsIdenticalAcrossEnginesAndJobs) {
  Trace trace = record_workload("HashMap");
  ASSERT_FALSE(trace.empty());
  Detection full =
      detect(trace, options_for(CycleEngine::kReference, 1, false));
  ASSERT_GE(full.cycles.size(), 2u) << "workload too small for a cap test";

  for (std::size_t cap = 1; cap <= full.cycles.size(); ++cap) {
    SCOPED_TRACE(cap);
    Detection ref = check_engines_agree(trace, /*magic=*/false, cap);
    EXPECT_EQ(ref.cycles.size(), cap);
    EXPECT_TRUE(ref.truncated);
    EXPECT_EQ(ref.cycle_cap, cap);
    // The capped enumeration is the prefix of the full one.
    for (std::size_t i = 0; i < cap; ++i)
      EXPECT_EQ(ref.cycles[i].tuple_idx, full.cycles[i].tuple_idx);
  }
}

// With the in-search clock cut, the emitted cycles must be exactly the
// order-preserving subsequence of the full enumeration that prune() keeps —
// for the scc engine and its arena twin alike.
void check_clock_prune(const Trace& trace, bool magic) {
  Detection full =
      detect(trace, options_for(CycleEngine::kScc, 1, magic));
  const std::vector<PruneVerdict> verdicts = prune(full);
  std::vector<PotentialDeadlock> survivors;
  for (std::size_t i = 0; i < full.cycles.size(); ++i)
    if (!is_false(verdicts[i])) survivors.push_back(full.cycles[i]);

  for (CycleEngine engine : {CycleEngine::kScc, CycleEngine::kArenaScc}) {
    for (int jobs : {1, 4}) {
      SCOPED_TRACE(jobs);
      Detection cut = detect(
          trace, options_for(engine, jobs, magic, /*clock_prune=*/true));
      expect_same_cycles(survivors, cut.cycles,
                         "prune() survivors vs clock cut");
      // Everything emitted under the cut survives a batch prune.
      for (PruneVerdict v : prune(cut)) EXPECT_FALSE(is_false(v));
    }
  }
}

TEST(CycleEngineTest, ClockPruneDuringSearchMatchesBatchPruner) {
  for (const char* name : {"HashMap", "ArrayList", "TreeMap"}) {
    SCOPED_TRACE(name);
    Trace trace = record_workload(name);
    if (trace.empty()) continue;
    check_clock_prune(trace, /*magic=*/false);
    check_clock_prune(trace, /*magic=*/true);
  }
}

TEST(CycleEngineTest, EmptyAndAcyclicDependenciesProduceNoCycles) {
  // Globally ordered locks: every tuple digraph edge points one way, all
  // SCCs are trivial, and the scc engine must do (and emit) nothing.
  LockDependency dep;
  DetectorOptions options;
  EnumerationResult empty = enumerate_cycles_scc(dep, options);
  EXPECT_TRUE(empty.cycles.empty());
  EXPECT_FALSE(empty.truncated);
  EnumerationResult empty_arena = enumerate_cycles_arena_scc(dep, options);
  EXPECT_TRUE(empty_arena.cycles.empty());
  EXPECT_FALSE(empty_arena.truncated);

  Trace trace = record_workload("LinkedList");
  if (!trace.empty()) check_engines_agree(trace, /*magic=*/false);
}

// Randomized differential test: random programs with varying shape, fork/join
// structure and lock nesting; every engine/jobs/magic combination must agree,
// and the clock cut must match the batch pruner.
class CycleEnginePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CycleEnginePropertyTest, EnginesAgreeOnRandomPrograms) {
  const int seed_index = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed_index) * 0x9e3779b97f4a7c15ULL + 5);
  test::RandomProgramConfig config;
  config.workers = 2 + static_cast<int>(rng.below(4));
  config.locks = 2 + static_cast<int>(rng.below(4));
  config.blocks_per_worker = 2 + static_cast<int>(rng.below(3));
  config.max_nesting = 2 + static_cast<int>(rng.below(3));
  config.nest_probability = 0.35 + 0.4 * rng.uniform();
  config.chained_start_probability = 0.5 * rng.uniform();
  config.early_join_probability = 0.5 * rng.uniform();
  sim::Program program = test::random_program(rng, config);

  auto trace = sim::record_trace(program, rng(), 40);
  if (!trace.has_value()) GTEST_SKIP() << "every recording run deadlocked";

  Detection ref = check_engines_agree(*trace, /*magic=*/false);
  check_engines_agree(*trace, /*magic=*/true);
  check_clock_prune(*trace, /*magic=*/false);

  // Re-run capped at half the cycles: truncation must stay engine-invariant.
  if (ref.cycles.size() >= 2)
    check_engines_agree(*trace, /*magic=*/false, ref.cycles.size() / 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CycleEnginePropertyTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace wolf
