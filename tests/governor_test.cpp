// Resource-governed online detection (core/governor.hpp) and its
// linear-time sound pre-filter (core/prefilter.hpp).
//
// The load-bearing properties:
//   * pre-filter soundness — whenever tuple-level enumeration finds a
//     cycle, the lock graph is suspicious (differentially, over random
//     programs); the refinements (single-thread SCCs, common guard locks)
//     only discharge windows that provably contain no cycle;
//   * governed ≡ ungoverned — with no budget, no deadline and no faults,
//     the governed detector's final Detection matches StreamingDetector's
//     bit for bit, at every window size;
//   * honesty — eviction flips coverage_complete and marks the window
//     kShedding; a per-window detection fault degrades only that window
//     (finish() re-enumerates, coverage stays complete); a fault in the
//     final enumeration is reported as incomplete coverage, never as a
//     clean empty report;
//   * the degradation ladder is a pure function with hysteresis;
//   * jobs invariance (DESIGN.md §17) — pipelined ingestion and per-SCC
//     window fan-out are invisible in every observable: cycles, verdict,
//     notes, window reports and live-cycle sequence numbers are
//     byte-identical at jobs ∈ {1, 2, 4, hardware}.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/governor.hpp"
#include "core/pipeline.hpp"
#include "core/prefilter.hpp"
#include "robust/fault.hpp"
#include "support/thread_pool.hpp"
#include "testutil.hpp"
#include "trace/trace_reader.hpp"
#include "wolf.hpp"
#include "workloads/paper_examples.hpp"

namespace wolf {
namespace {

Event acquire(ThreadId t, LockId l, SiteId site, std::int32_t occ = 1) {
  Event e;
  e.kind = EventKind::kLockAcquire;
  e.thread = t;
  e.lock = l;
  e.site = site;
  e.occurrence = occ;
  return e;
}

Event release(ThreadId t, LockId l) {
  Event e;
  e.kind = EventKind::kLockRelease;
  e.thread = t;
  e.lock = l;
  return e;
}

// Classic two-thread AB/BA deadlock pattern, optionally guarded by a gate
// lock g held around both regions.
Trace ab_ba_trace(bool gated) {
  Trace trace;
  SiteId site = 1;
  auto region = [&](ThreadId t, LockId a, LockId b) {
    if (gated) trace.events.push_back(acquire(t, 5, site++));
    trace.events.push_back(acquire(t, a, site++));
    trace.events.push_back(acquire(t, b, site++));
    trace.events.push_back(release(t, b));
    trace.events.push_back(release(t, a));
    if (gated) trace.events.push_back(release(t, 5));
  };
  region(1, 10, 20);
  region(2, 20, 10);
  std::uint64_t seq = 0;
  for (Event& e : trace.events) e.seq = seq++;
  return trace;
}

std::set<DefectSignature> signatures_of(const Detection& det) {
  std::set<DefectSignature> sigs;
  for (const PotentialDeadlock& cycle : det.cycles)
    sigs.insert(signature_of(cycle, det.dep));
  return sigs;
}

LockGraph graph_of(const Trace& trace) {
  LockGraph g;
  LockDependency dep = LockDependency::from_trace(trace);
  for (const LockTuple& t : dep.tuples) g.on_tuple(t);
  return g;
}

// ------------------------------------------------------------- pre-filter

TEST(PrefilterTest, FlagsTheUngatedAbBaPattern) {
  LockGraph g = graph_of(ab_ba_trace(/*gated=*/false));
  EXPECT_TRUE(g.suspicious());
  EXPECT_GE(g.suspicious_scc_count(), 1u);
}

TEST(PrefilterTest, GateLockDischargesTheSccWithoutEnumeration) {
  // Both AB/BA regions run under gate lock 5: every edge of the {10,20}
  // SCC carries the gate in its guard intersection, so the lockset-
  // disjointness requirement can never be met — not suspicious.
  Trace gated = ab_ba_trace(/*gated=*/true);
  EXPECT_TRUE(detect(gated).cycles.empty());
  EXPECT_FALSE(graph_of(gated).suspicious());
}

TEST(PrefilterTest, SingleThreadCycleIsNotSuspicious) {
  // One thread acquiring in both orders creates the lock-graph cycle
  // 10 -> 20 -> 10, but a deadlock needs two distinct threads.
  Trace trace;
  SiteId site = 1;
  for (auto [a, b] : {std::pair<LockId, LockId>{10, 20}, {20, 10}}) {
    trace.events.push_back(acquire(1, a, site++));
    trace.events.push_back(acquire(1, b, site++));
    trace.events.push_back(release(1, b));
    trace.events.push_back(release(1, a));
  }
  EXPECT_FALSE(graph_of(trace).suspicious());
}

TEST(PrefilterTest, GenerationAdvancesOnlyOnVerdictRelevantChanges) {
  LockGraph g;
  LockDependency dep = LockDependency::from_trace(ab_ba_trace(false));
  for (const LockTuple& t : dep.tuples) g.on_tuple(t);
  const std::uint64_t gen = g.generation();
  // Re-feeding identical tuples adds no edge, widens no thread set and
  // narrows no guard mask — the generation must not move.
  for (const LockTuple& t : dep.tuples) g.on_tuple(t);
  EXPECT_EQ(g.generation(), gen);
}

TEST(PrefilterTest, LocksetMaskCoversFourWordsAndDropsTheRest) {
  GuardMask low = lockset_mask({0, 3});
  EXPECT_EQ(low.w[0], (1ULL << 0) | (1ULL << 3));
  EXPECT_TRUE(low.any());
  // Lock 70 used to vanish from the old single-word mask; it now lands in
  // word 1 and can still discharge an SCC as a guard.
  GuardMask mid = lockset_mask({70});
  EXPECT_EQ(mid.w[1], 1ULL << 6);
  EXPECT_TRUE(mid.any());
  EXPECT_EQ(lockset_mask({255}).w[3], 1ULL << 63);
  // Locks >= GuardMask::kBits vanish: a vanished guard can only weaken the
  // common-guard refinement (more suspicious), never discharge an SCC.
  EXPECT_FALSE(lockset_mask({static_cast<LockId>(GuardMask::kBits)}).any());
  EXPECT_FALSE(lockset_mask({1000}).any());
}

TEST(PrefilterTest, GateLockAboveSixtyFourStillDischargesHundredLockTrace) {
  // 100 locks; the AB/BA pair is (90, 95) and the gate is lock 80 — all
  // beyond the old 64-bit mask. Touch locks 0..79 first so the interesting
  // ids really sit past word 0, then run both gated regions. The guard
  // refinement must discharge the SCC exactly as it does for small ids.
  Trace trace;
  SiteId site = 1;
  for (LockId l = 0; l < 80; ++l) {
    trace.events.push_back(acquire(1, l, site++));
    trace.events.push_back(release(1, l));
  }
  auto region = [&](ThreadId t, LockId a, LockId b) {
    trace.events.push_back(acquire(t, 80, site++));
    trace.events.push_back(acquire(t, a, site++));
    trace.events.push_back(acquire(t, b, site++));
    trace.events.push_back(release(t, b));
    trace.events.push_back(release(t, a));
    trace.events.push_back(release(t, 80));
  };
  region(1, 90, 95);
  region(2, 95, 90);
  std::uint64_t seq = 0;
  for (Event& e : trace.events) e.seq = seq++;

  EXPECT_TRUE(detect(trace).cycles.empty());
  EXPECT_FALSE(graph_of(trace).suspicious());

  // Same trace without the gate: suspicious, and the detector agrees.
  Trace ungated;
  ungated.events.reserve(trace.events.size());
  for (const Event& e : trace.events)
    if (e.lock != 80) ungated.events.push_back(e);
  std::uint64_t reseq = 0;
  for (Event& e : ungated.events) e.seq = reseq++;
  EXPECT_FALSE(detect(ungated).cycles.empty());
  EXPECT_TRUE(graph_of(ungated).suspicious());
}

// Differential soundness over random programs: detector finds a cycle ⇒
// the pre-filter must have flagged the graph. (The converse may fail; that
// is the allowed direction.)
class PrefilterSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(PrefilterSoundnessTest, NeverClearsATraceWithCycles) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761ULL + 23);
  test::RandomProgramConfig config;
  config.workers = 2 + static_cast<int>(rng.below(3));
  config.locks = 2 + static_cast<int>(rng.below(3));
  sim::Program program = test::random_program(rng, config);
  auto trace = sim::record_trace(program, rng(), 40);
  if (!trace.has_value()) GTEST_SKIP() << "recording deadlocked";

  Detection det = detect(*trace);
  if (det.cycles.empty()) GTEST_SKIP() << "no cycles to witness";
  EXPECT_TRUE(graph_of(*trace).suspicious())
      << "pre-filter cleared a trace with " << det.cycles.size()
      << " enumerable cycle(s) — unsound";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefilterSoundnessTest,
                         ::testing::Range(0, 40));

// --------------------------------------------------------------- governor

TEST(GovernorTest, UngovernedMatchesStreamingDetectorBitForBit) {
  Rng rng(77);
  sim::Program program = test::random_program(rng);
  auto trace = sim::record_trace(program, 5, 40);
  ASSERT_TRUE(trace.has_value());

  StreamingDetector plain;
  for (const Event& e : trace->events) plain.add(e);
  Detection expected = plain.finish();

  for (std::size_t window : {std::size_t{8}, std::size_t{1000},
                             std::size_t{1} << 20}) {
    GovernorOptions options;
    options.window_events = window;
    GovernedStreamingDetector governed(options);
    for (const Event& e : trace->events) governed.add(e);
    Detection got = governed.finish();

    EXPECT_EQ(got.cycles.size(), expected.cycles.size()) << window;
    for (std::size_t i = 0;
         i < std::min(got.cycles.size(), expected.cycles.size()); ++i)
      EXPECT_EQ(got.cycles[i].tuple_idx, expected.cycles[i].tuple_idx);
    EXPECT_EQ(got.defects.size(), expected.defects.size());
    EXPECT_EQ(got.dep.unique.size(), expected.dep.unique.size());

    GovernorVerdict verdict = governed.verdict();
    EXPECT_TRUE(verdict.coverage_complete);
    EXPECT_EQ(verdict.tuples_evicted, 0u);
    EXPECT_EQ(verdict.windows,
              (trace->size() + window - 1) / window);
  }
}

TEST(GovernorTest, SuspiciousWindowsSurfaceCyclesBeforeFinish) {
  Trace trace = ab_ba_trace(false);
  GovernorOptions options;
  options.window_events = 4;  // boundaries inside and after the pattern
  GovernedStreamingDetector governed(options);
  for (const Event& e : trace.events) governed.add(e);
  Detection det = governed.finish();
  ASSERT_FALSE(det.cycles.empty());

  std::size_t surfaced = 0;
  bool any_suspicious = false;
  for (const WindowReport& w : governed.windows()) {
    surfaced += w.new_cycles;
    any_suspicious |= w.suspicious;
  }
  EXPECT_TRUE(any_suspicious);
  EXPECT_GE(surfaced, 1u);
}

TEST(GovernorTest, CompactionIsLosslessForTheCycleSet) {
  // Repeat the AB/BA pattern many times: the tuple store fills with
  // duplicates that compaction may drop without changing the cycle set.
  LockDependencyBuilder builder;
  for (int rep = 0; rep < 50; ++rep)
    for (const Event& e : ab_ba_trace(false).events) builder.add(e);
  const std::size_t before = builder.tuple_count();
  LockDependency full = builder.snapshot_dependency();

  const std::size_t removed = builder.compact();
  EXPECT_GT(removed, 0u);
  EXPECT_EQ(builder.tuple_count(), before - removed);

  Detection with_full = finish_detection(full, builder.clocks(), {});
  Detection compacted =
      finish_detection(builder.snapshot_dependency(), builder.clocks(), {});
  EXPECT_EQ(signatures_of(with_full), signatures_of(compacted));
  EXPECT_EQ(with_full.cycles.size(), compacted.cycles.size());
}

TEST(GovernorTest, EvictOldestDropsFromTheFront) {
  LockDependencyBuilder builder;
  for (const Event& e : ab_ba_trace(false).events) builder.add(e);
  const std::size_t total = builder.tuple_count();
  ASSERT_GE(total, 3u);
  const std::size_t first_kept =
      builder.pending().tuples[total - 2].trace_pos;
  EXPECT_EQ(builder.evict_oldest(2), total - 2);
  EXPECT_EQ(builder.tuple_count(), 2u);
  EXPECT_EQ(builder.pending().tuples.front().trace_pos, first_kept);
  EXPECT_EQ(builder.evict_oldest(10), 0u);  // already under the cap
}

TEST(GovernorTest, MemoryBudgetEvictionIsReportedHonestly) {
  // A long synthetic stream of distinct tuples (every acquisition has a
  // fresh site, so compaction cannot help) against a 1 MiB budget.
  Trace trace;
  std::uint64_t seq = 0;
  SiteId site = 1;
  for (int rep = 0; rep < 40000; ++rep) {
    const ThreadId t = static_cast<ThreadId>(1 + (rep & 1));
    trace.events.push_back(acquire(t, 10, site++));
    trace.events.push_back(acquire(t, 20, site++));
    trace.events.push_back(release(t, 20));
    trace.events.push_back(release(t, 10));
  }
  for (Event& e : trace.events) e.seq = seq++;

  GovernorOptions options;
  options.memory_budget_mb = 1;
  options.window_events = 4096;
  GovernedStreamingDetector governed(options);
  for (const Event& e : trace.events) governed.add(e);
  (void)governed.finish();

  GovernorVerdict verdict = governed.verdict();
  EXPECT_GT(verdict.tuples_evicted, 0u);
  EXPECT_FALSE(verdict.coverage_complete);
  EXPECT_TRUE(verdict.degraded());
  EXPECT_FALSE(verdict.notes.empty());

  // The budget actually held: every post-governance window footprint is
  // under 1 MiB, and shedding windows are marked as such.
  std::size_t evicted = 0;
  for (const WindowReport& w : governed.windows()) {
    EXPECT_LE(w.store_bytes, options.memory_budget_mb << 20) << w.index;
    if (w.tuples_evicted > 0) {
      EXPECT_EQ(w.level, DetectionLevel::kShedding);
      EXPECT_TRUE(w.degraded());
    }
    evicted += w.tuples_evicted;
  }
  EXPECT_EQ(evicted, verdict.tuples_evicted);
}

TEST(GovernorTest, JobsWithMemoryBudgetIsSupported) {
  // Pins the Config contract (facade.cpp): jobs + memory_budget is a fully
  // supported combination, not a warning. The decode→ingest ring is bounded
  // (pipeline_depth blocks), so a fast decoder parks instead of queueing
  // unbounded blocks, and the budget is enforced at window boundaries
  // exactly as in the serial path.
  Config cfg;
  cfg.jobs = 4;
  cfg.memory_budget_mb = 1;
  for (const ConfigIssue& issue : cfg.validate()) {
    EXPECT_NE(issue.message.find("budget"), 0u);
    EXPECT_EQ(issue.message.find("memory"), std::string::npos)
        << "jobs+budget must not warn: " << issue.message;
  }

  // A stream hot enough to trip eviction under a 1 MiB budget, run through
  // the pipelined path at several jobs levels: identical verdicts, and the
  // budget holds for every window at every level.
  Trace trace;
  std::uint64_t seq = 0;
  SiteId site = 1;
  for (int rep = 0; rep < 10000; ++rep) {
    const ThreadId t = static_cast<ThreadId>(1 + (rep & 1));
    trace.events.push_back(acquire(t, 10, site++));
    trace.events.push_back(acquire(t, 20, site++));
    trace.events.push_back(release(t, 20));
    trace.events.push_back(release(t, 10));
  }
  for (Event& e : trace.events) e.seq = seq++;

  std::string baseline_summary;
  std::set<DefectSignature> baseline_sigs;
  for (int jobs : {1, 4}) {
    GovernorOptions options;
    options.memory_budget_mb = 1;
    options.window_events = 4096;
    options.jobs = jobs;
    options.pipeline_depth = 2;  // a tight ring maximizes backpressure
    Session session = Session::open_governed(options);
    VectorTraceReader reader(trace);
    session.ingest(reader);
    Session::Verdict v = session.finish();

    for (const WindowReport& w : v.windows)
      EXPECT_LE(w.store_bytes, options.memory_budget_mb << 20)
          << "jobs " << jobs << " window " << w.index;
    EXPECT_GT(v.governor.tuples_evicted, 0u) << "budget never engaged";
    if (jobs > 1) {
      // The ring actually ran: bounded hand-off is the mechanism that keeps
      // jobs+budget memory-safe, so its use must be observable.
      EXPECT_TRUE(v.pipeline.used);
    }

    if (baseline_summary.empty()) {
      baseline_summary = v.governor.summary();
      baseline_sigs = signatures_of(v.detection);
    } else {
      EXPECT_EQ(v.governor.summary(), baseline_summary) << "jobs " << jobs;
      EXPECT_EQ(signatures_of(v.detection), baseline_sigs)
          << "jobs " << jobs;
    }
  }
}

TEST(GovernorTest, PerWindowDetectionFaultIsContained) {
  Trace trace = ab_ba_trace(false);
  robust::FaultPlan fault;
  fault.detect_throw_window = 0;

  GovernorOptions options;
  options.window_events = 4;
  options.fault = &fault;
  GovernedStreamingDetector governed(options);
  for (const Event& e : trace.events) governed.add(e);
  Detection det = governed.finish();

  GovernorVerdict verdict = governed.verdict();
  EXPECT_EQ(verdict.detection_faults, 1u);
  // finish() re-enumerated over everything retained: the fault cost window
  // 0 its early surfacing, not final coverage.
  EXPECT_TRUE(verdict.coverage_complete);
  EXPECT_FALSE(det.cycles.empty());
  ASSERT_FALSE(governed.windows().empty());
  EXPECT_FALSE(governed.windows()[0].note.empty());
  EXPECT_TRUE(governed.windows()[0].degraded());
}

TEST(GovernorTest, FinalEnumerationFaultIsIncompleteNotClean) {
  Trace trace = ab_ba_trace(false);
  GovernorOptions options;
  options.detector.jobs = 2;  // engage the pool so the task fault fires
  GovernedStreamingDetector governed(options);
  for (const Event& e : trace.events) governed.add(e);

  ThreadPool::inject_task_fault(0);
  Detection det = governed.finish();
  ThreadPool::clear_task_fault();

  GovernorVerdict verdict = governed.verdict();
  EXPECT_TRUE(det.cycles.empty());
  // The trailing window's enumeration hits the injected fault too (it is
  // contained); the final enumeration's is the one that loses coverage.
  EXPECT_GE(verdict.detection_faults, 1u);
  EXPECT_FALSE(verdict.coverage_complete)
      << "an empty report after a failed final enumeration must not look "
         "like a clean bill of health";
}

// ---------------------------------------------- incremental SCC pre-filter

using Partition = std::set<std::vector<DynamicScc::Node>>;

Partition oracle_partition(const DynamicScc& scc) {
  Partition p;
  for (std::vector<DynamicScc::Node> comp : scc.tarjan_components()) {
    std::sort(comp.begin(), comp.end());
    p.insert(std::move(comp));
  }
  return p;
}

Partition label_partition(const DynamicScc& scc) {
  Partition p;
  for (std::size_t c = 0; c < scc.component_capacity(); ++c) {
    if (!scc.component_alive(static_cast<int>(c))) continue;
    std::vector<DynamicScc::Node> comp = scc.members(static_cast<int>(c));
    std::sort(comp.begin(), comp.end());
    p.insert(std::move(comp));
  }
  return p;
}

// Random insert/expire interleavings through the LockGraph's tuple surface,
// with the differential oracle checked after EVERY mutation: the maintained
// decomposition must equal a fresh Tarjan over the same adjacency, and the
// incremental verdict must stay sound versus a graph rebuilt from only the
// live tuples (staleness may only ever point toward "more suspicious").
class LockGraphMutationFuzz : public ::testing::TestWithParam<int> {};

TEST_P(LockGraphMutationFuzz, CondensationEqualsFreshTarjanAfterEveryStep) {
  Rng rng(0x10c6 + static_cast<std::uint64_t>(GetParam()) * 6364136223846793005ULL);
  LockGraph g;
  std::vector<LockTuple> live;
  const int lock_universe = 3 + static_cast<int>(rng.below(5));
  SiteId next_site = 1;
  const int steps = 60;
  for (int s = 0; s < steps; ++s) {
    if (!live.empty() && rng.chance(0.4)) {
      const std::size_t pick = rng.below(live.size());
      g.on_tuple_removed(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      LockTuple t;
      t.thread = static_cast<ThreadId>(1 + rng.below(3));
      t.lock = static_cast<LockId>(rng.below(
          static_cast<std::uint64_t>(lock_universe)));
      const std::size_t depth = 1 + rng.below(3);
      for (std::size_t d = 0; d < depth; ++d) {
        const LockId held = static_cast<LockId>(
            rng.below(static_cast<std::uint64_t>(lock_universe)));
        if (std::find(t.lockset.begin(), t.lockset.end(), held) !=
            t.lockset.end())
          continue;
        t.lockset.push_back(held);
        ExecIndex idx;
        idx.site = next_site++;
        idx.occurrence = 1;
        t.context.push_back(idx);
      }
      if (t.lockset.empty()) continue;
      ExecIndex idx;
      idx.site = next_site++;
      idx.occurrence = 1;
      t.context.push_back(idx);
      g.on_tuple(t);
      live.push_back(std::move(t));
    }
    ASSERT_EQ(label_partition(g.scc()), oracle_partition(g.scc()))
        << "seed " << GetParam() << " step " << s;

    // Soundness of the (stale-refinement) incremental verdict: a graph
    // rebuilt from exactly the live tuples may only be LESS suspicious.
    LockGraph fresh;
    for (const LockTuple& t : live) fresh.on_tuple(t);
    if (fresh.suspicious()) {
      ASSERT_TRUE(g.suspicious())
          << "seed " << GetParam() << " step " << s
          << ": incremental verdict cleared a live suspicious graph";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockGraphMutationFuzz,
                         ::testing::Range(0, 200));

TEST(PrefilterTest, DirtyDrainReturnsSuspiciousLocksExactlyOnce) {
  LockGraph g;
  LockDependency dep = LockDependency::from_trace(ab_ba_trace(false));
  for (const LockTuple& t : dep.tuples) g.on_tuple(t);
  ASSERT_TRUE(g.has_dirty());
  std::vector<LockId> locks = g.drain_dirty_suspicious_locks();
  std::set<LockId> lock_set(locks.begin(), locks.end());
  EXPECT_EQ(lock_set, (std::set<LockId>{10, 20}));
  // Caught up: nothing dirty, second drain is empty.
  EXPECT_FALSE(g.has_dirty());
  EXPECT_TRUE(g.drain_dirty_suspicious_locks().empty());
  // A re-fed identical edge-bearing tuple still re-marks its component (it
  // could be a brand-new canonical tuple in a stable SCC). Tuples with an
  // empty lockset carry no edge and leave no mark.
  for (const LockTuple& t : dep.tuples)
    if (!t.lockset.empty()) {
      g.on_tuple(t);
      break;
    }
  EXPECT_TRUE(g.has_dirty());
}

TEST(PrefilterTest, ExpiryToZeroRefcountRemovesTheEdgeAndVerdict) {
  LockGraph g;
  LockDependency dep = LockDependency::from_trace(ab_ba_trace(false));
  for (const LockTuple& t : dep.tuples) g.on_tuple(t);
  ASSERT_TRUE(g.suspicious());
  const std::size_t edges = g.edge_count();
  // Remove every contributing tuple: the AB/BA SCC must dissolve.
  for (const LockTuple& t : dep.tuples)
    if (!t.lockset.empty()) g.on_tuple_removed(t);
  EXPECT_LT(g.edge_count(), edges);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_FALSE(g.suspicious());
  EXPECT_EQ(g.suspicious_scc_count(), 0u);
}

TEST(GovernorTest, IncrementalAndRecomputePathsAgreeBitForBit) {
  // Same stream, both enumeration modes, across window sizes and with a
  // budget tight enough to force compaction + eviction churn: the final
  // Detection and the honesty bookkeeping must be identical.
  Trace trace;
  std::uint64_t seq = 0;
  SiteId site = 1;
  for (int rep = 0; rep < 400; ++rep) {
    const ThreadId t = static_cast<ThreadId>(1 + (rep & 1));
    trace.events.push_back(acquire(t, 10, site++));
    trace.events.push_back(acquire(t, 20, site++));
    trace.events.push_back(release(t, 20));
    trace.events.push_back(release(t, 10));
    if (rep % 50 == 49)  // sprinkle the AB/BA ring through the stream
      for (const Event& e : ab_ba_trace(false).events)
        trace.events.push_back(e);
  }
  for (Event& e : trace.events) e.seq = seq++;

  for (std::size_t window : {std::size_t{16}, std::size_t{256}}) {
    for (std::size_t budget_mb : {std::size_t{0}, std::size_t{1}}) {
      GovernorOptions options;
      options.window_events = window;
      options.memory_budget_mb = budget_mb;

      options.incremental_scc = true;
      GovernedStreamingDetector inc(options);
      for (const Event& e : trace.events) inc.add(e);
      Detection inc_det = inc.finish();

      options.incremental_scc = false;
      GovernedStreamingDetector rec(options);
      for (const Event& e : trace.events) rec.add(e);
      Detection rec_det = rec.finish();

      EXPECT_EQ(signatures_of(inc_det), signatures_of(rec_det))
          << "window " << window << " budget " << budget_mb;
      EXPECT_EQ(inc_det.cycles.size(), rec_det.cycles.size());
      for (std::size_t i = 0;
           i < std::min(inc_det.cycles.size(), rec_det.cycles.size()); ++i)
        EXPECT_EQ(inc_det.cycles[i].tuple_idx, rec_det.cycles[i].tuple_idx);
      EXPECT_EQ(inc.verdict().coverage_complete,
                rec.verdict().coverage_complete);
      EXPECT_EQ(inc.verdict().tuples_evicted, rec.verdict().tuples_evicted);
      EXPECT_EQ(inc.verdict().tuples_compacted,
                rec.verdict().tuples_compacted);
    }
  }
}

// ---------------------------------------------- jobs invariance (§17)

// Everything the parallel path promises to keep byte-stable, flattened:
// final cycles, verdict summary + notes, every window report's
// deterministic fields, and the live-delivery transcript (order AND
// sequence numbers included).
std::string run_governed_fingerprint(const Trace& trace,
                                     GovernorOptions options) {
  std::ostringstream live;
  options.on_cycle = [&live](const LiveCycle& lc) {
    live << "w" << lc.window << " #" << lc.sequence << ' '
         << lc.cycle->to_string(*lc.dep) << '\n';
  };
  GovernedStreamingDetector governed(options);
  for (const Event& e : trace.events) governed.add(e);
  Detection det = governed.finish();

  std::ostringstream fp;
  for (const PotentialDeadlock& c : det.cycles) {
    fp << "cycle:";
    for (std::size_t t : c.tuple_idx) fp << t << ',';
    fp << '\n';
  }
  const GovernorVerdict verdict = governed.verdict();
  fp << verdict.summary() << '\n';
  for (const std::string& note : verdict.notes) fp << "note: " << note << '\n';
  for (const WindowReport& w : governed.windows())
    fp << "w" << w.index << " ev=" << w.events << " live=" << w.tuples_live
       << " bytes=" << w.store_bytes << " level=" << to_string(w.level)
       << " susp=" << w.suspicious << " new=" << w.new_cycles
       << " compacted=" << w.tuples_compacted
       << " evicted=" << w.tuples_evicted << " note=" << w.note << '\n';
  fp << live.str();
  return fp.str();
}

TEST(GovernorTest, JobsInvarianceAcrossWindowSizesAndBudgets) {
  // The differential family behind the §17 contract: per-SCC fan-out must
  // be invisible in every observable — across window sizes, with and
  // without budget churn (compaction + eviction renumber the store between
  // windows), and at jobs = 0 (hardware) as well as fixed levels.
  Trace trace;
  std::uint64_t seq = 0;
  SiteId site = 1;
  for (int rep = 0; rep < 200; ++rep) {
    const ThreadId t = static_cast<ThreadId>(1 + (rep & 1));
    trace.events.push_back(acquire(t, 10, site++));
    trace.events.push_back(acquire(t, 20, site++));
    trace.events.push_back(release(t, 20));
    trace.events.push_back(release(t, 10));
    if (rep % 25 == 24) {
      // A second, disjoint AB/BA ring on {30, 40}: two independent
      // suspicious SCCs per window, so the fan-out really has more than
      // one task to merge back in canonical order.
      for (Event e : ab_ba_trace(false).events) {
        if (e.lock == 10) e.lock = 30;
        if (e.lock == 20) e.lock = 40;
        trace.events.push_back(e);
      }
      for (const Event& e : ab_ba_trace(false).events)
        trace.events.push_back(e);
    }
  }
  for (Event& e : trace.events) e.seq = seq++;

  for (std::size_t window : {std::size_t{16}, std::size_t{256}}) {
    for (std::size_t budget_mb : {std::size_t{0}, std::size_t{1}}) {
      GovernorOptions options;
      options.window_events = window;
      options.memory_budget_mb = budget_mb;
      options.jobs = 1;
      const std::string base = run_governed_fingerprint(trace, options);
      EXPECT_NE(base.find("cycle:"), std::string::npos);
      for (int jobs : {2, 4, 0}) {
        options.jobs = jobs;
        EXPECT_EQ(run_governed_fingerprint(trace, options), base)
            << "window " << window << " budget " << budget_mb << " jobs "
            << jobs;
      }
    }
  }
}

TEST(GovernorTest, DetectReaderGovernedPipelineIsBitIdenticalToSerial) {
  Trace trace;
  std::uint64_t seq = 0;
  for (int rep = 0; rep < 100; ++rep)
    for (const Event& e : ab_ba_trace(false).events)
      trace.events.push_back(e);
  for (Event& e : trace.events) e.seq = seq++;

  GovernorOptions options;
  options.window_events = 64;
  options.jobs = 1;
  VectorTraceReader serial_reader(trace);
  GovernedDetection serial = detect_reader_governed(serial_reader, options);
  EXPECT_FALSE(serial.pipeline.used);
  ASSERT_FALSE(serial.detection.cycles.empty());

  for (int jobs : {2, 4}) {
    options.jobs = jobs;
    VectorTraceReader reader(trace);
    GovernedDetection piped = detect_reader_governed(reader, options);
    EXPECT_TRUE(piped.pipeline.used) << jobs;
    ASSERT_EQ(piped.detection.cycles.size(), serial.detection.cycles.size());
    for (std::size_t i = 0; i < piped.detection.cycles.size(); ++i)
      EXPECT_EQ(piped.detection.cycles[i].tuple_idx,
                serial.detection.cycles[i].tuple_idx);
    EXPECT_EQ(piped.verdict.coverage_complete,
              serial.verdict.coverage_complete);
    EXPECT_EQ(piped.verdict.final_level, serial.verdict.final_level);
    ASSERT_EQ(piped.windows.size(), serial.windows.size());
    for (std::size_t i = 0; i < piped.windows.size(); ++i) {
      EXPECT_EQ(piped.windows[i].events, serial.windows[i].events) << i;
      EXPECT_EQ(piped.windows[i].new_cycles, serial.windows[i].new_cycles)
          << i;
      EXPECT_EQ(piped.windows[i].store_bytes, serial.windows[i].store_bytes)
          << i;
    }
  }
}

TEST(GovernorTest, LiveSubscriberSeesEveryCycleBeforeFinish) {
  for (const bool incremental : {true, false}) {
    Trace trace = ab_ba_trace(false);
    GovernorOptions options;
    options.window_events = 4;
    options.incremental_scc = incremental;

    struct Sighting {
      std::size_t window;
      std::size_t sequence;
      DefectSignature signature;
    };
    std::vector<Sighting> sightings;
    bool finished = false;
    options.on_cycle = [&](const LiveCycle& lc) {
      EXPECT_FALSE(finished) << "LiveCycle delivered after finish()";
      sightings.push_back(
          {lc.window, lc.sequence, signature_of(*lc.cycle, *lc.dep)});
    };
    GovernedStreamingDetector subscribed(options);
    for (const Event& e : trace.events) subscribed.add(e);
    Detection sub_det = subscribed.finish();
    finished = true;

    options.on_cycle = nullptr;
    GovernedStreamingDetector plain(options);
    for (const Event& e : trace.events) plain.add(e);
    Detection plain_det = plain.finish();

    // Every committed cycle was surfaced mid-run, in sequence order.
    ASSERT_FALSE(sub_det.cycles.empty());
    ASSERT_EQ(sightings.size(), sub_det.cycles.size()) << incremental;
    EXPECT_EQ(subscribed.cycles_surfaced_live(), sightings.size());
    std::set<DefectSignature> surfaced;
    for (std::size_t i = 0; i < sightings.size(); ++i) {
      EXPECT_EQ(sightings[i].sequence, i + 1);
      surfaced.insert(sightings[i].signature);
    }
    EXPECT_EQ(surfaced, signatures_of(sub_det));

    // Subscription is observation-only: finish() is identical.
    EXPECT_EQ(sub_det.cycles.size(), plain_det.cycles.size());
    for (std::size_t i = 0; i < sub_det.cycles.size(); ++i)
      EXPECT_EQ(sub_det.cycles[i].tuple_idx, plain_det.cycles[i].tuple_idx);
    EXPECT_EQ(signatures_of(sub_det), signatures_of(plain_det));
    EXPECT_EQ(subscribed.verdict().coverage_complete,
              plain.verdict().coverage_complete);
  }
}

TEST(GovernorTest, ThrowingSubscriberIsContainedAsAWindowFault) {
  Trace trace = ab_ba_trace(false);
  GovernorOptions options;
  options.window_events = 4;
  options.on_cycle = [](const LiveCycle&) {
    throw std::runtime_error("subscriber exploded");
  };
  GovernedStreamingDetector governed(options);
  for (const Event& e : trace.events) governed.add(e);
  Detection det = governed.finish();

  GovernorVerdict verdict = governed.verdict();
  EXPECT_GE(verdict.detection_faults, 1u);
  // finish() never delivers to the subscriber, so the authoritative pass
  // is untouched: full coverage, cycles present.
  EXPECT_TRUE(verdict.coverage_complete);
  EXPECT_FALSE(det.cycles.empty());
}

TEST(PrefilterTest, UndrainedDirtyMarksAccumulateAcrossWindows) {
  // The governor's catch-up contract: a kPrefilterOnly window skips the
  // drain, so the marks must still be there — folded onto current labels —
  // when a later promoted window finally drains. Simulate three windows of
  // feeding without draining, then one drain must cover everything.
  LockGraph g;
  LockDependency dep = LockDependency::from_trace(ab_ba_trace(false));
  std::size_t fed = 0;
  for (const LockTuple& t : dep.tuples) {
    g.on_tuple(t);  // one "window" per tuple, never drained
    if (!t.lockset.empty()) {
      ++fed;
      ASSERT_TRUE(g.has_dirty()) << "mark lost after tuple " << fed;
    }
  }
  ASSERT_GE(fed, 2u);
  std::vector<LockId> locks = g.drain_dirty_suspicious_locks();
  std::set<LockId> lock_set(locks.begin(), locks.end());
  EXPECT_EQ(lock_set, (std::set<LockId>{10, 20}));
  EXPECT_FALSE(g.has_dirty());
}

// ----------------------------------------------------- degradation ladder

TEST(LadderTest, NoDeadlineNeverMoves) {
  int streak = 0;
  EXPECT_EQ(next_rung(DetectionLevel::kFullScc, 1e9, 0, streak),
            DetectionLevel::kFullScc);
}

TEST(LadderTest, DemotesOnMissAndStopsAtPrefilterOnly) {
  int streak = 5;
  DetectionLevel level = DetectionLevel::kFullScc;
  level = next_rung(level, 0.2, 100, streak);  // 200ms > 100ms deadline
  EXPECT_EQ(level, DetectionLevel::kClockPruned);
  EXPECT_EQ(streak, 0);
  level = next_rung(level, 0.2, 100, streak);
  EXPECT_EQ(level, DetectionLevel::kPrefilterOnly);
  level = next_rung(level, 0.2, 100, streak);
  EXPECT_EQ(level, DetectionLevel::kPrefilterOnly)
      << "deadline pressure never reaches kShedding";
}

TEST(LadderTest, PromotesOnlyAfterTwoConsecutiveFastWindows) {
  int streak = 0;
  DetectionLevel level = DetectionLevel::kPrefilterOnly;
  level = next_rung(level, 0.01, 100, streak);  // fast #1
  EXPECT_EQ(level, DetectionLevel::kPrefilterOnly);
  level = next_rung(level, 0.01, 100, streak);  // fast #2 -> promote
  EXPECT_EQ(level, DetectionLevel::kClockPruned);
  // A merely-adequate window (over deadline/2) resets the streak.
  level = next_rung(level, 0.07, 100, streak);
  EXPECT_EQ(level, DetectionLevel::kClockPruned);
  level = next_rung(level, 0.01, 100, streak);
  EXPECT_EQ(level, DetectionLevel::kClockPruned)
      << "one fast window after a reset must not promote";
  level = next_rung(level, 0.01, 100, streak);
  EXPECT_EQ(level, DetectionLevel::kFullScc);
}

TEST(LadderTest, DeadlinePressureDemotesARealRun) {
  // An effectively-zero deadline (1ms against per-window enumeration of a
  // growing store) must walk the ladder down; the verdict reports the
  // demotion without losing final coverage.
  Trace trace;
  std::uint64_t seq = 0;
  SiteId site = 1;
  for (int rep = 0; rep < 100; ++rep) {
    for (const Event& e : ab_ba_trace(false).events) {
      trace.events.push_back(e);
      trace.events.back().site =
          trace.events.back().site == kInvalidSite ? kInvalidSite : site++;
      trace.events.back().seq = seq++;
    }
  }
  GovernorOptions options;
  options.window_events = 64;
  options.window_deadline_ms = 0;  // ungoverned reference
  GovernedStreamingDetector reference(options);
  for (const Event& e : trace.events) reference.add(e);
  Detection expected = reference.finish();

  options.window_deadline_ms = 1;
  GovernedStreamingDetector governed(options);
  for (const Event& e : trace.events) governed.add(e);
  Detection got = governed.finish();

  EXPECT_EQ(signatures_of(got), signatures_of(expected))
      << "ladder demotions must not change the final detection";
  EXPECT_TRUE(governed.verdict().coverage_complete);
}

// ------------------------------------------------------------ end-to-end

TEST(GovernorTest, GovernedPipelineOnPaperWorkload) {
  workloads::Figure4 example = workloads::make_figure4();
  auto trace = sim::record_trace(example.program, 3, 40);
  ASSERT_TRUE(trace.has_value());

  WolfOptions options;
  options.jobs = 1;
  options.replay.attempts = 4;
  GovernorOptions governor;
  governor.window_events = 16;

  VectorTraceReader reader(*trace);
  WolfReport report =
      analyze_reader_governed(example.program, reader, options, governor);
  EXPECT_TRUE(report.governed);
  EXPECT_GT(report.governor.windows, 0u);
  EXPECT_TRUE(report.governor.coverage_complete);

  WolfReport batch = analyze_trace(example.program, *trace, options);
  EXPECT_EQ(report.detection.cycles.size(), batch.detection.cycles.size());
  EXPECT_EQ(report.defects.size(), batch.defects.size());
}

}  // namespace
}  // namespace wolf
