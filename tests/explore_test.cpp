// Tests for the systematic schedule explorer: exhaustiveness, deadlock
// signature enumeration, budget handling, and agreement with hand analysis.
#include <gtest/gtest.h>

#include <algorithm>

#include "explore/explorer.hpp"
#include "sim/scheduler.hpp"
#include "workloads/paper_examples.hpp"

namespace wolf {
namespace {

using explore::explore;
using explore::ExploreOptions;
using explore::ExploreResult;

sim::Program abba_program() {
  sim::Program p;
  LockId a = p.add_lock("A", p.site("alloc", 1));
  LockId b = p.add_lock("B", p.site("alloc", 2));
  ThreadId main = p.add_thread("main");
  ThreadId t1 = p.add_thread("t1");
  ThreadId t2 = p.add_thread("t2");
  p.lock(t1, a, p.site("t1.a", 1));
  p.lock(t1, b, p.site("t1.b", 2));
  p.unlock(t1, b, p.site("t1.ub", 3));
  p.unlock(t1, a, p.site("t1.ua", 4));
  p.lock(t2, b, p.site("t2.b", 1));
  p.lock(t2, a, p.site("t2.a", 2));
  p.unlock(t2, a, p.site("t2.ua", 3));
  p.unlock(t2, b, p.site("t2.ub", 4));
  p.start(main, t1, p.site("spawn", 1));
  p.start(main, t2, p.site("spawn", 1));
  p.join(main, t1, p.site("join", 1));
  p.join(main, t2, p.site("join", 1));
  p.finalize();
  return p;
}

TEST(ExplorerTest, FindsTheAbbaDeadlock) {
  sim::Program p = abba_program();
  ExploreResult result = explore(p);
  ASSERT_TRUE(result.exhausted);
  EXPECT_EQ(result.deadlock_signatures.size(), 1u);
  EXPECT_GT(result.deadlock_states, 0u);
  EXPECT_GT(result.completed_states, 0u);
  // Both the deadlock and completion are reachable.
  const auto& sig = *result.deadlock_signatures.begin();
  EXPECT_EQ(sig.size(), 2u);
}

TEST(ExplorerTest, ConsistentOrderProgramNeverDeadlocks) {
  sim::Program p;
  LockId a = p.add_lock("A", p.site("alloc", 1));
  LockId b = p.add_lock("B", p.site("alloc", 2));
  ThreadId main = p.add_thread("main");
  ThreadId t1 = p.add_thread("t1");
  ThreadId t2 = p.add_thread("t2");
  for (ThreadId t : {t1, t2}) {
    p.lock(t, a, p.site("outer", 1));
    p.lock(t, b, p.site("inner", 2));
    p.unlock(t, b, p.site("iu", 3));
    p.unlock(t, a, p.site("ou", 4));
  }
  p.start(main, t1, p.site("spawn", 1));
  p.start(main, t2, p.site("spawn", 1));
  p.join(main, t1, p.site("join", 1));
  p.join(main, t2, p.site("join", 1));
  p.finalize();

  ExploreResult result = explore(p);
  ASSERT_TRUE(result.exhausted);
  EXPECT_TRUE(result.deadlock_signatures.empty());
  EXPECT_EQ(result.deadlock_states, 0u);
}

TEST(ExplorerTest, SequentialProgramHasLinearStateSpace) {
  sim::Program p;
  ThreadId main = p.add_thread("main");
  for (int i = 0; i < 5; ++i) p.compute(main, p.site("c", i));
  p.finalize();
  ExploreResult result = explore(p);
  ASSERT_TRUE(result.exhausted);
  EXPECT_EQ(result.completed_states, 1u);
  EXPECT_GE(result.states, 6u);  // init, one per compute, terminated
  EXPECT_LE(result.states, 7u);
}

TEST(ExplorerTest, BudgetExhaustionReported) {
  auto w = workloads::make_philosophers(4);
  ExploreOptions options;
  options.max_states = 50;
  ExploreResult result = explore(w.program, options);
  EXPECT_FALSE(result.exhausted);
  EXPECT_LE(result.states, 51u);
}

TEST(ExplorerTest, PhilosophersFullRingIsTheOnlyDeadlock) {
  auto w = workloads::make_philosophers(3);
  ExploreResult result = explore(w.program);
  ASSERT_TRUE(result.exhausted);
  ASSERT_EQ(result.deadlock_signatures.size(), 1u);
  // The unique deadlock blocks every philosopher at its second pick.
  std::vector<SiteId> expected = w.second_pick;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(*result.deadlock_signatures.begin(), expected);
}

TEST(ExplorerTest, DeadlockReachableAtHelper) {
  sim::Program p = abba_program();
  ExploreResult result = explore(p);
  ASSERT_TRUE(result.exhausted);
  auto sig = *result.deadlock_signatures.begin();
  EXPECT_TRUE(result.deadlock_reachable_at(sig));
  EXPECT_FALSE(result.deadlock_reachable_at({}));
  EXPECT_FALSE(result.deadlock_reachable_at({999}));
}

TEST(ExplorerTest, Figure2MatchesPaperFeasibility) {
  auto fig = workloads::make_figure2();
  ExploreResult result = explore(fig.program);
  ASSERT_TRUE(result.exhausted);
  // θ1 (509,509) and θ2/θ3 (509,522) reachable; θ4 (522,522) not.
  EXPECT_EQ(result.deadlock_signatures.size(), 2u);
}

TEST(ExplorerTest, TransitionsAndStatesAreConsistent) {
  sim::Program p = abba_program();
  ExploreResult result = explore(p);
  // Every distinct state except the initial one is reached by at least one
  // transition.
  EXPECT_GE(result.transitions + 1, result.states);
}

}  // namespace
}  // namespace wolf
