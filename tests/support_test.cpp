// Unit tests for the support utilities: RNG, stats, tables, flags, strings,
// and the SPSC ring queue behind pipelined ingestion.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <thread>

#include "support/arena.hpp"
#include "support/check.hpp"
#include "support/flags.hpp"
#include "support/io.hpp"
#include "support/mmap_file.hpp"
#include "support/ring_queue.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

namespace wolf {
namespace {

// ---------------------------------------------------------------- Rng

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(RngTest, BelowOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(99);
  std::map<std::uint64_t, int> histogram;
  constexpr int kSamples = 40000;
  for (int i = 0; i < kSamples; ++i) ++histogram[rng.below(8)];
  for (const auto& [bucket, count] : histogram) {
    EXPECT_GT(count, kSamples / 8 * 0.85) << "bucket " << bucket;
    EXPECT_LT(count, kSamples / 8 * 1.15) << "bucket " << bucket;
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng a(42);
  Rng fork1 = a.fork();
  Rng b(42);
  Rng fork2 = b.fork();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(fork1(), fork2());
}

TEST(RngTest, Mix64IsStable) {
  EXPECT_EQ(mix64(0), mix64(0));
  EXPECT_NE(mix64(1), mix64(2));
}

// ---------------------------------------------------------------- Stats

TEST(StatsTest, EmptyDefaults) {
  Stats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(StatsTest, MeanAndSum) {
  Stats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(StatsTest, StddevMatchesHandComputation) {
  Stats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  // Sample stddev (n-1): variance = 32/7.
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsTest, PercentileInterpolates) {
  Stats s;
  for (double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 17.5);
}

TEST(StatsTest, PercentileSingleSample) {
  Stats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.percentile(0), 3.5);
  EXPECT_DOUBLE_EQ(s.percentile(50), 3.5);
  EXPECT_DOUBLE_EQ(s.percentile(100), 3.5);
}

TEST(StatsTest, PercentileAfterLaterAdd) {
  Stats s;
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 1.0);
  s.add(3.0);  // sorted cache must invalidate
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

TEST(StatsTest, ClearResets) {
  Stats s;
  s.add(1);
  s.clear();
  EXPECT_TRUE(s.empty());
}

// ---------------------------------------------------------------- TextTable

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::string out = t.to_string();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22222 |"), std::string::npos);
}

TEST(TextTableTest, RowArityMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckFailure);
}

TEST(TextTableTest, NumAndPctFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
  EXPECT_EQ(TextTable::pct(0.5), "50.0%");
}

// ---------------------------------------------------------------- Flags

TEST(FlagsTest, ParsesAllForms) {
  Flags flags;
  flags.define_int("n", 1, "int");
  flags.define_bool("verbose", false, "bool");
  flags.define_string("name", "x", "string");
  const char* argv[] = {"prog", "--n=5", "--verbose", "--name", "hello"};
  ASSERT_TRUE(flags.parse(5, const_cast<char**>(argv)));
  EXPECT_EQ(flags.get_int("n"), 5);
  EXPECT_TRUE(flags.get_bool("verbose"));
  EXPECT_EQ(flags.get_string("name"), "hello");
}

TEST(FlagsTest, DefaultsSurviveEmptyArgv) {
  Flags flags;
  flags.define_int("n", 7, "int");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, const_cast<char**>(argv)));
  EXPECT_EQ(flags.get_int("n"), 7);
}

TEST(FlagsTest, RejectsUnknownFlag) {
  Flags flags;
  flags.define_int("n", 7, "int");
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(flags.parse(2, const_cast<char**>(argv)));
}

TEST(FlagsTest, RejectsBadInt) {
  Flags flags;
  flags.define_int("n", 7, "int");
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_FALSE(flags.parse(2, const_cast<char**>(argv)));
}

TEST(FlagsTest, BoolExplicitValues) {
  Flags flags;
  flags.define_bool("x", true, "bool");
  const char* argv[] = {"prog", "--x=false"};
  ASSERT_TRUE(flags.parse(2, const_cast<char**>(argv)));
  EXPECT_FALSE(flags.get_bool("x"));
}

TEST(FlagsTest, MissingValueFails) {
  Flags flags;
  flags.define_string("s", "", "string");
  const char* argv[] = {"prog", "--s"};
  EXPECT_FALSE(flags.parse(2, const_cast<char**>(argv)));
}

// ---------------------------------------------------------------- str

TEST(StrTest, SplitBasic) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StrTest, SplitNoSeparator) {
  auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StrTest, TrimWhitespace) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StrTest, StartsWith) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
}

TEST(StrTest, ParseInt) {
  long long v = 0;
  EXPECT_TRUE(parse_int("42", v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(parse_int(" -7 ", v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(parse_int("", v));
  EXPECT_FALSE(parse_int("12x", v));
}

TEST(StrTest, Join) {
  std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(join(parts, ", "), "a, b, c");
  EXPECT_EQ(join(std::vector<std::string>{}, ","), "");
}

// ---------------------------------------------------------------- check

TEST(CheckTest, FailureCarriesMessage) {
  try {
    WOLF_CHECK_MSG(false, "context " << 42);
    FAIL() << "expected throw";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

TEST(CheckTest, PassingCheckIsSilent) {
  EXPECT_NO_THROW(WOLF_CHECK(1 + 1 == 2));
}

// ------------------------------------------------------------- atomic io

namespace {

std::string slurp(const std::filesystem::path& p) {
  std::ifstream is(p, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    path = std::filesystem::temp_directory_path() /
           ("wolf-io-test-" + std::to_string(::getpid()));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

}  // namespace

TEST(AtomicWriteTest, WritesContentsAndLeavesNoTempFile) {
  TempDir dir;
  const std::string target = (dir.path / "out.txt").string();
  std::string error;
  ASSERT_TRUE(support::atomic_write_file(target, "hello", &error)) << error;
  EXPECT_EQ(slurp(target), "hello");
  EXPECT_FALSE(std::filesystem::exists(target + ".tmp"));
}

TEST(AtomicWriteTest, OverwriteReplacesWholeContents) {
  TempDir dir;
  const std::string target = (dir.path / "out.txt").string();
  ASSERT_TRUE(support::atomic_write_file(target, "first version"));
  ASSERT_TRUE(support::atomic_write_file(target, "v2"));
  EXPECT_EQ(slurp(target), "v2");
}

TEST(AtomicWriteTest, TornWriteLeavesTargetUntouched) {
  TempDir dir;
  const std::string target = (dir.path / "out.txt").string();
  ASSERT_TRUE(support::atomic_write_file(target, "the good contents"));

  // Kill point mid-write: the failure must report itself, remove the temp
  // file, and leave the previous contents byte-for-byte intact.
  std::string error;
  EXPECT_FALSE(support::atomic_write_file(target, "replacement that dies",
                                          &error, /*fail_after_bytes=*/4));
  EXPECT_NE(error.find("torn"), std::string::npos);
  EXPECT_NE(error.find("untouched"), std::string::npos);
  EXPECT_EQ(slurp(target), "the good contents");
  EXPECT_FALSE(std::filesystem::exists(target + ".tmp"));
}

TEST(AtomicWriteTest, TornFirstWriteCreatesNothing) {
  TempDir dir;
  const std::string target = (dir.path / "fresh.txt").string();
  EXPECT_FALSE(
      support::atomic_write_file(target, "never lands", nullptr, 0));
  EXPECT_FALSE(std::filesystem::exists(target));
  EXPECT_FALSE(std::filesystem::exists(target + ".tmp"));
}

TEST(AtomicWriteTest, FailsCleanlyOnUnwritableDirectory) {
  std::string error;
  EXPECT_FALSE(support::atomic_write_file(
      "/nonexistent-dir-for-wolf-tests/out.txt", "x", &error));
  EXPECT_FALSE(error.empty());
}

TEST(AtomicFileWriterTest, StreamsAndCommitsAtomically) {
  TempDir dir;
  const std::string target = (dir.path / "stream.bin").string();
  {
    support::AtomicFileWriter writer(target);
    ASSERT_TRUE(writer.ok());
    writer.stream() << "part one, ";
    writer.stream() << "part two";
    // Nothing lands at the target until commit.
    EXPECT_FALSE(std::filesystem::exists(target));
    std::string error;
    ASSERT_TRUE(writer.commit(&error)) << error;
  }
  EXPECT_EQ(slurp(target), "part one, part two");
  EXPECT_FALSE(std::filesystem::exists(target + ".tmp"));
}

TEST(AtomicFileWriterTest, DestructionWithoutCommitLeavesTargetUntouched) {
  TempDir dir;
  const std::string target = (dir.path / "keep.bin").string();
  ASSERT_TRUE(support::atomic_write_file(target, "the good contents"));
  {
    support::AtomicFileWriter writer(target);
    writer.stream() << "half-written replacement that never commits";
  }
  EXPECT_EQ(slurp(target), "the good contents");
  EXPECT_FALSE(std::filesystem::exists(target + ".tmp"));
}

TEST(AtomicFileWriterTest, FailsCleanlyOnUnwritableDirectory) {
  support::AtomicFileWriter writer(
      "/nonexistent-dir-for-wolf-tests/out.bin");
  EXPECT_FALSE(writer.ok());
  std::string error;
  EXPECT_FALSE(writer.commit(&error));
  EXPECT_FALSE(error.empty());
}

// ------------------------------------------------------------- mmap file

TEST(MmapFileTest, MapsFileContents) {
  TempDir dir;
  const std::string target = (dir.path / "data.bin").string();
  std::string contents = "mapped bytes";
  contents.push_back('\0');  // binary-safe: a nul must survive the trip
  contents += " with a nul inside";
  ASSERT_TRUE(support::atomic_write_file(target, contents));
  auto map = support::MmapFile::open(target);
  ASSERT_TRUE(map.has_value());
  EXPECT_EQ(map->bytes(), contents);
  auto moved = std::move(*map);
  EXPECT_EQ(moved.bytes(), contents);
}

TEST(MmapFileTest, EmptyFileMapsToEmptyView) {
  TempDir dir;
  const std::string target = (dir.path / "empty.bin").string();
  ASSERT_TRUE(support::atomic_write_file(target, ""));
  auto map = support::MmapFile::open(target);
  ASSERT_TRUE(map.has_value());
  EXPECT_TRUE(map->bytes().empty());
}

TEST(MmapFileTest, MissingFileAndDirectoryReturnNullopt) {
  TempDir dir;
  EXPECT_FALSE(
      support::MmapFile::open((dir.path / "nope.bin").string()).has_value());
  // Directories are not mappable traces.
  EXPECT_FALSE(support::MmapFile::open(dir.path.string()).has_value());
}

// ----------------------------------------------------------------- arena

TEST(ArenaTest, AllocationsAreZeroedAndStable) {
  support::Arena arena(/*chunk_bytes=*/4096);
  std::vector<std::uint32_t*> arrays;
  for (int i = 0; i < 100; ++i) {
    std::uint32_t* a = arena.alloc_array<std::uint32_t>(64);
    for (int j = 0; j < 64; ++j) {
      EXPECT_EQ(a[j], 0u);
      a[j] = static_cast<std::uint32_t>(i * 1000 + j);
    }
    arrays.push_back(a);
  }
  // Growth must never move earlier allocations.
  for (int i = 0; i < 100; ++i)
    for (int j = 0; j < 64; ++j)
      EXPECT_EQ(arrays[static_cast<std::size_t>(i)][j],
                static_cast<std::uint32_t>(i * 1000 + j));
  EXPECT_GE(arena.bytes_allocated(), 100 * 64 * sizeof(std::uint32_t));
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_allocated());
}

TEST(ArenaTest, OversizedAllocationGetsDedicatedChunk) {
  support::Arena arena(/*chunk_bytes=*/4096);
  std::uint8_t* small1 = arena.alloc_array<std::uint8_t>(16);
  std::uint64_t* big = arena.alloc_array<std::uint64_t>(1 << 16);  // 512 KiB
  std::uint8_t* small2 = arena.alloc_array<std::uint8_t>(16);
  small1[0] = 1;
  big[0] = 2;
  big[(1 << 16) - 1] = 3;
  small2[0] = 4;
  EXPECT_EQ(small1[0], 1);
  EXPECT_EQ(big[0], 2u);
  EXPECT_EQ(big[(1 << 16) - 1], 3u);
  EXPECT_EQ(small2[0], 4);
}

TEST(ArenaTest, ZeroLengthArraysAreDistinctFromNull) {
  support::Arena arena;
  EXPECT_NE(arena.alloc_array<int>(0), nullptr);
}

TEST(ArenaTest, ResetReleasesEverything) {
  support::Arena arena(/*chunk_bytes=*/4096);
  arena.alloc_array<char>(1 << 20);
  EXPECT_GT(arena.bytes_reserved(), 0u);
  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  // The arena is reusable after reset.
  int* p = arena.alloc_array<int>(8);
  p[7] = 42;
  EXPECT_EQ(p[7], 42);
}

// ---------------------------------------------------------------- RingQueue

TEST(RingQueueTest, PreservesOrderSingleThreaded) {
  RingQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.push(int(i)));
  int v = -1;
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, i);
  }
}

TEST(RingQueueTest, CapacityRoundsUpToPowerOfTwo) {
  // depth=5 rounds to 8: pushes 1..8 succeed without a consumer.
  RingQueue<int> q(5);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.push(int(i)));
  int v = 0;
  EXPECT_TRUE(q.pop(v));
  EXPECT_TRUE(q.push(99));  // one slot freed, one push admitted
}

TEST(RingQueueTest, PushBlocksUntilConsumerDrains) {
  RingQueue<int> q(2);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(3));  // blocks: ring is full
    third_pushed.store(true);
  });
  // The producer must be stalled, not failing fast.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_pushed.load());
  int v = 0;
  EXPECT_TRUE(q.pop(v));
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_GE(q.stats().push_stalls, 1u);
}

TEST(RingQueueTest, PopDrainsRemainingItemsAfterClose) {
  RingQueue<int> q(8);
  ASSERT_TRUE(q.push(10));
  ASSERT_TRUE(q.push(20));
  q.close();
  EXPECT_FALSE(q.push(30));  // closed: producers are refused
  int v = 0;
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 10);
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 20);
  EXPECT_FALSE(q.pop(v));  // drained AND closed
}

TEST(RingQueueTest, CloseWakesBlockedConsumer) {
  RingQueue<int> q(4);
  std::thread consumer([&] {
    int v = 0;
    EXPECT_FALSE(q.pop(v));  // blocks on empty, then sees close
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
  EXPECT_GE(q.stats().pop_stalls, 1u);
}

TEST(RingQueueTest, SpscStressKeepsEveryItemInOrder) {
  // The production shape: one producer, one consumer, a ring much smaller
  // than the item count so both sides stall repeatedly.
  constexpr int kItems = 20000;
  RingQueue<int> q(4);
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) ASSERT_TRUE(q.push(int(i)));
    q.close();
  });
  int expected = 0, v = -1;
  while (q.pop(v)) {
    ASSERT_EQ(v, expected);
    ++expected;
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
}

TEST(RingQueueTest, MoveOnlyPayloadsMoveThrough) {
  RingQueue<std::unique_ptr<int>> q(2);
  ASSERT_TRUE(q.push(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

TEST(ArenaTest, MixedAlignmentsStayAligned) {
  support::Arena arena;
  for (int i = 0; i < 50; ++i) {
    auto* c = arena.alloc_array<char>(3);
    auto* u64 = arena.alloc_array<std::uint64_t>(1);
    auto* u16 = arena.alloc_array<std::uint16_t>(5);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(u64) % alignof(std::uint64_t),
              0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(u16) % alignof(std::uint16_t),
              0u);
    *c = 1;
    *u64 = 2;
    *u16 = 3;
  }
}

}  // namespace
}  // namespace wolf
