// Microbenchmarks for the analysis core: D_σ construction, clock tracking,
// cycle enumeration, Gs generation and the Pruner, across workload sizes.
#include <benchmark/benchmark.h>

#include "core/detector.hpp"
#include "core/generator.hpp"
#include "core/magic_prune.hpp"
#include "core/online_sink.hpp"
#include "core/pruner.hpp"
#include "sim/scheduler.hpp"
#include "workloads/cache4j.hpp"
#include "workloads/jigsaw.hpp"
#include "workloads/paper_examples.hpp"

namespace {

using namespace wolf;

Trace cache_trace(int ops) {
  workloads::Cache4jConfig config;
  config.ops_per_thread = ops;
  auto trace = sim::record_trace(workloads::make_cache4j(config), 7);
  WOLF_CHECK(trace.has_value());
  return std::move(*trace);
}

Trace jigsaw_trace() {
  auto w = workloads::make_jigsaw();
  auto trace = sim::record_trace(w.program, 7, 100, 400000);
  WOLF_CHECK(trace.has_value());
  return std::move(*trace);
}

void BM_LockDependencyFromTrace(benchmark::State& state) {
  Trace trace = cache_trace(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    LockDependency dep = LockDependency::from_trace(trace);
    benchmark::DoNotOptimize(dep.tuples.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_LockDependencyFromTrace)->Arg(16)->Arg(64)->Arg(256);

void BM_ClockTrackerFromTrace(benchmark::State& state) {
  Trace trace = cache_trace(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ClockTracker clocks = ClockTracker::from_trace(trace);
    benchmark::DoNotOptimize(clocks.max_thread());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_ClockTrackerFromTrace)->Arg(64)->Arg(256);

void BM_OnlineSink(benchmark::State& state) {
  Trace trace = cache_trace(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    OnlineAnalysisSink sink;
    for (const Event& e : trace.events) sink.on_event(e);
    benchmark::DoNotOptimize(sink.tuple_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_OnlineSink)->Arg(64)->Arg(256);

void BM_CycleEnumerationJigsaw(benchmark::State& state) {
  Trace trace = jigsaw_trace();
  LockDependency dep = LockDependency::from_trace(trace);
  for (auto _ : state) {
    auto cycles = enumerate_cycles(dep);
    benchmark::DoNotOptimize(cycles.size());
  }
}
BENCHMARK(BM_CycleEnumerationJigsaw);

void BM_CycleEnumerationPhilosophers(benchmark::State& state) {
  auto w = workloads::make_philosophers(static_cast<int>(state.range(0)));
  auto trace = sim::record_trace(w.program, 7);
  WOLF_CHECK(trace.has_value());
  LockDependency dep = LockDependency::from_trace(*trace);
  DetectorOptions options;
  options.max_cycle_length = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto cycles = enumerate_cycles(dep, options);
    benchmark::DoNotOptimize(cycles.size());
  }
}
BENCHMARK(BM_CycleEnumerationPhilosophers)->Arg(3)->Arg(5)->Arg(7);

void BM_GeneratorJigsaw(benchmark::State& state) {
  Trace trace = jigsaw_trace();
  Detection detection = detect(trace);
  WOLF_CHECK(!detection.cycles.empty());
  std::size_t i = 0;
  for (auto _ : state) {
    GeneratorResult gen =
        generate(detection.cycles[i % detection.cycles.size()],
                 detection.dep);
    benchmark::DoNotOptimize(gen.feasible);
    ++i;
  }
}
BENCHMARK(BM_GeneratorJigsaw);

void BM_PrunerJigsaw(benchmark::State& state) {
  Trace trace = jigsaw_trace();
  Detection detection = detect(trace);
  for (auto _ : state) {
    auto verdicts = prune(detection);
    benchmark::DoNotOptimize(verdicts.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(detection.cycles.size()));
}
BENCHMARK(BM_PrunerJigsaw);

void BM_MagicPrune(benchmark::State& state) {
  Trace trace = cache_trace(static_cast<int>(state.range(0)));
  LockDependency dep = LockDependency::from_trace(trace);
  for (auto _ : state) {
    auto alive = magic_prune(dep);
    benchmark::DoNotOptimize(alive.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dep.unique.size()));
}
BENCHMARK(BM_MagicPrune)->Arg(64)->Arg(256);

void BM_CycleEnumerationWithMagicPrune(benchmark::State& state) {
  // Detection cost on a lock-heavy, cycle-free trace with and without the
  // MagicFuzzer reduction.
  Trace trace = cache_trace(256);
  LockDependency dep = LockDependency::from_trace(trace);
  const bool pruned = state.range(0) != 0;
  for (auto _ : state) {
    LockDependency d = dep;
    if (pruned) d.unique = magic_prune(dep);
    auto cycles = enumerate_cycles(d);
    benchmark::DoNotOptimize(cycles.size());
  }
}
BENCHMARK(BM_CycleEnumerationWithMagicPrune)->Arg(0)->Arg(1);

void BM_FullDetectJigsaw(benchmark::State& state) {
  Trace trace = jigsaw_trace();
  for (auto _ : state) {
    Detection detection = detect(trace);
    benchmark::DoNotOptimize(detection.cycles.size());
  }
}
BENCHMARK(BM_FullDetectJigsaw);

}  // namespace

BENCHMARK_MAIN();
