// Ablation (DESIGN.md §7, choice 3): the cost/benefit of the Pruner and the
// Generator's cyclicity check.
//
// Runs the WOLF pipeline over the suite in four configurations and reports
// classification counts and total replay time. Disabling either filter
// cannot create false "reproduced" verdicts — infeasible cycles simply burn
// replay attempts and end up unknown — so the filters' value is the replay
// budget they save and the defects they auto-classify as false.
#include <iostream>

#include "support/flags.hpp"
#include "support/table.hpp"
#include "suite_runner.hpp"

using namespace wolf;

int main(int argc, char** argv) {
  Flags flags;
  flags.define_int("seed", 2014, "seed");
  flags.define_int("attempts", 6, "replay attempts per cycle");
  if (!flags.parse(argc, argv)) return 1;
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const int attempts = static_cast<int>(flags.get_int("attempts"));

  struct Config {
    const char* name;
    bool pruner;
    bool generator;
  };
  const Config configs[] = {
      {"full WOLF", true, true},
      {"no pruner", false, true},
      {"no Gs check", true, false},
      {"neither", false, false},
  };

  std::cout << "Ablation — Pruner / Generator-check contribution "
            << "(suite-wide totals)\n";
  TextTable table({"Config", "FP auto-classified", "Reproduced", "Unknown",
                   "Replay time (s)"});

  for (const Config& config : configs) {
    int fp = 0, reproduced = 0, unknown = 0;
    double replay_seconds = 0;
    for (const workloads::Benchmark& bench : workloads::standard_suite()) {
      WolfOptions options;
      options.seed = seed;
      options.replay.attempts = attempts;
      options.max_steps = bench.max_steps;
      options.enable_pruner = config.pruner;
      options.enable_generator_check = config.generator;
      WolfReport report = run_wolf(bench.program, options);
      fp += report.false_positive_cycles();
      reproduced += report.count_cycles(Classification::kReproduced);
      unknown += report.count_cycles(Classification::kUnknown);
      replay_seconds += report.timings.replay_seconds;
    }
    table.add_row({config.name, std::to_string(fp),
                   std::to_string(reproduced), std::to_string(unknown),
                   TextTable::num(replay_seconds, 2)});
  }
  table.render(std::cout);
  std::cout << "\nexpected: disabling the filters moves cycles from the FP\n"
               "column into Unknown and inflates replay time; it never\n"
               "manufactures a reproduction for a false cycle.\n";
  return 0;
}
