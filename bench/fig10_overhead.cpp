// Reproduces Figure 10: WOLF's detection and reproduction time overheads
// normalized to DeadlockFuzzer's.
//
//   detection(WOLF)    = record + D_σ/clock analysis + Pruner + Generator
//   detection(DF)      = record + D_σ analysis (base iGoodLock)
//   reproduction(tool) = total time of that tool's reproduction trials
//
// The paper measures ≈1.1× relative detection overhead (the vector clocks
// and Gs generation are cheap) and 0.8×–2.1× relative reproduction time
// (WOLF explores new regions on the defects DF cannot reproduce at all).
#include <cstdio>
#include <iostream>

#include "rt/executor.hpp"
#include "support/flags.hpp"
#include "support/stats.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"
#include "suite_runner.hpp"

using namespace wolf;

namespace {

// One completed instrumented OS-thread execution, timed — the record phase
// both tools pay (the paper runs the program once per tool). Returns 0 when
// no attempt completes.
double timed_rt_record(const sim::Program& program, std::uint64_t seed) {
  Rng rng(seed);
  for (int attempt = 0; attempt < 30; ++attempt) {
    TraceRecorder recorder;
    rt::ExecutorOptions options;
    options.sink = &recorder;
    options.seed = rng();
    Stopwatch watch;
    sim::RunResult result = rt::execute(program, options);
    if (result.outcome == sim::RunOutcome::kCompleted) return watch.seconds();
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_int("seed", 2014, "seed");
  flags.define_int("attempts", 6, "reproduction attempts per cycle");
  flags.define_int("repeats", 3, "timing repetitions (median)");
  if (!flags.parse(argc, argv)) return 1;

  bench::SuiteOptions options;
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  options.replay_attempts = static_cast<int>(flags.get_int("attempts"));
  options.measure_slowdown = false;
  const int repeats = static_cast<int>(flags.get_int("repeats"));

  std::cout << "Figure 10 — WOLF time normalized to DeadlockFuzzer\n";
  TextTable table({"Benchmark", "Detection (WOLF/DF)", "Reproduction (WOLF/DF)"});

  for (const workloads::Benchmark& bench : workloads::standard_suite()) {
    Stats det_ratio, rep_ratio;
    for (int r = 0; r < repeats; ++r) {
      bench::SuiteOptions run_options = options;
      run_options.seed = mix64(options.seed + static_cast<std::uint64_t>(r));
      bench::BenchmarkOutcome o = bench::run_benchmark(bench, run_options);
      // Detection = one instrumented execution (OS threads, like the paper's
      // instrumented JVM run) + the offline analysis; WOLF's extra analysis
      // is the Pruner and Generator.
      const double record = timed_rt_record(bench.program, run_options.seed);
      const double wolf_det = record + o.wolf.timings.detect_seconds +
                              o.wolf.timings.prune_seconds +
                              o.wolf.timings.generate_seconds;
      const double df_det = record + o.df.timings.detect_seconds;
      if (df_det > 0 && record > 0) det_ratio.add(wolf_det / df_det);
      if (o.df.timings.replay_seconds > 0 &&
          o.wolf.timings.replay_seconds > 0)
        rep_ratio.add(o.wolf.timings.replay_seconds /
                      o.df.timings.replay_seconds);
    }
    table.add_row(
        {bench.name,
         det_ratio.empty() ? "-" : TextTable::num(det_ratio.median(), 2),
         rep_ratio.empty() ? "-" : TextTable::num(rep_ratio.median(), 2)});
  }
  table.render(std::cout);
  std::cout << "\npaper: detection ≈1.1x across benchmarks; reproduction "
               "0.8x (WeakHashMap) to 2.1x (Jigsaw).\n";
  return 0;
}
