// Reproduces Table 1: per-benchmark defect counts (source-location
// deduplicated, §4.3), the Pruner/Generator false-positive split, true
// positives and unknowns for WOLF vs DeadlockFuzzer, the detection slowdown,
// and the average |Vs| of the generated synchronization dependency graphs.
// Paper values are printed alongside for comparison.
#include <cstdio>
#include <iostream>

#include "support/flags.hpp"
#include "support/table.hpp"
#include "suite_runner.hpp"

using namespace wolf;

int main(int argc, char** argv) {
  Flags flags;
  flags.define_int("seed", 2014, "pipeline seed");
  flags.define_int("attempts", 6, "reproduction attempts per cycle");
  flags.define_bool("slowdown", true,
                    "measure OS-thread detection slowdown (paper column 5)");
  flags.define_int("slowdown-runs", 5, "completed runs per slowdown mode");
  if (!flags.parse(argc, argv)) return 1;

  bench::SuiteOptions options;
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  options.replay_attempts = static_cast<int>(flags.get_int("attempts"));
  options.measure_slowdown = flags.get_bool("slowdown");
  options.slowdown_runs = static_cast<int>(flags.get_int("slowdown-runs"));

  std::cout << "Table 1 — defect-level comparison (measured | paper)\n";
  TextTable table({"Benchmark", "Slowdown", "Vs", "Detected", "FP(Pr)",
                   "FP(Gen)", "TP WOLF", "TP DF", "Unk WOLF", "Unk DF"});

  int tot_detected = 0, tot_fp = 0, tot_tp_wolf = 0, tot_tp_df = 0,
      tot_unk_wolf = 0, tot_unk_df = 0;
  int paper_detected = 0, paper_fp = 0, paper_tp_wolf = 0, paper_tp_df = 0,
      paper_unk_wolf = 0, paper_unk_df = 0;

  auto cell = [](int measured, int paper) {
    return std::to_string(measured) + " | " + std::to_string(paper);
  };

  for (const bench::BenchmarkOutcome& o : bench::run_suite(options)) {
    const int detected = static_cast<int>(o.wolf.defects.size());
    const int fp_pr = o.wolf.count_defects(Classification::kFalseByPruner);
    const int fp_gen =
        o.wolf.count_defects(Classification::kFalseByGenerator);
    const int tp_wolf = o.wolf.count_defects(Classification::kReproduced);
    const int unk_wolf = o.wolf.count_defects(Classification::kUnknown);
    const int tp_df = o.df.count_defects(Classification::kReproduced);
    const int unk_df = static_cast<int>(o.df.defects.size()) - tp_df;

    table.add_row({o.name,
                   TextTable::num(o.slowdown, 2) + " | " +
                       TextTable::num(o.paper.slowdown, 2),
                   TextTable::num(o.wolf.avg_gs_vertices, 1),
                   cell(detected, o.paper.detected),
                   cell(fp_pr, o.paper.fp_pruner),
                   cell(fp_gen, o.paper.fp_generator),
                   cell(tp_wolf, o.paper.tp_wolf),
                   cell(tp_df, o.paper.tp_df),
                   cell(unk_wolf, o.paper.unknown_wolf),
                   cell(unk_df, o.paper.unknown_df)});

    tot_detected += detected;
    tot_fp += fp_pr + fp_gen;
    tot_tp_wolf += tp_wolf;
    tot_tp_df += tp_df;
    tot_unk_wolf += unk_wolf;
    tot_unk_df += unk_df;
    paper_detected += o.paper.detected;
    paper_fp += o.paper.fp_pruner + o.paper.fp_generator;
    paper_tp_wolf += o.paper.tp_wolf;
    paper_tp_df += o.paper.tp_df;
    paper_unk_wolf += o.paper.unknown_wolf;
    paper_unk_df += o.paper.unknown_df;
  }
  table.add_row({"Cumulative", "-", "-", cell(tot_detected, paper_detected),
                 cell(tot_fp, paper_fp), "-", cell(tot_tp_wolf, paper_tp_wolf),
                 cell(tot_tp_df, paper_tp_df),
                 cell(tot_unk_wolf, paper_unk_wolf),
                 cell(tot_unk_df, paper_unk_df)});
  table.render(std::cout);

  auto pct = [](int n, int total) {
    return total == 0 ? 0.0 : 100.0 * n / total;
  };
  std::printf(
      "\nmeasured: FP %.1f%% (paper 18.5%%), TP WOLF %.1f%% (paper 55.4%%), "
      "TP DF %.1f%% (paper 35.4%%), unknown WOLF %.1f%% (paper 26.1%%)\n",
      pct(tot_fp, tot_detected), pct(tot_tp_wolf, tot_detected),
      pct(tot_tp_df, tot_detected), pct(tot_unk_wolf, tot_detected));
  return 0;
}
