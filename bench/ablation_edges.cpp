// Ablation (DESIGN.md §7, choice 1): what do the type-C and type-P edges of
// the synchronization dependency graph buy?
//
// For every replayable cycle of the list/map/logging benchmarks, the replay
// hit rate is measured with four Gs variants: type-D only (just the deadlock
// condition — essentially "pause at the final acquisitions"), D+P (program
// order added), D+C (per-lock trace order added), and the full graph. The
// paper's argument (§4.2, Fig. 9 discussion) is that the trace-derived
// ordering edges are what make reproduction reliable; dropping them should
// collapse the hit rate toward DeadlockFuzzer's.
#include <iostream>

#include "support/flags.hpp"
#include "support/table.hpp"
#include "suite_runner.hpp"

using namespace wolf;

namespace {

double hit_rate_with(const sim::Program& program, const Detection& detection,
                     std::size_t cycle, const SyncDependencyGraph& gs,
                     int runs, std::uint64_t seed, std::uint64_t max_steps) {
  ReplayOptions options;
  options.attempts = runs;
  options.stop_on_first_hit = false;
  options.seed = seed;
  options.max_steps = max_steps;
  return replay(program, detection.cycles[cycle], detection.dep, gs, options)
      .hit_rate();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_int("seed", 2014, "seed");
  flags.define_int("runs", 30, "replay runs per cycle and variant");
  if (!flags.parse(argc, argv)) return 1;
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const int runs = static_cast<int>(flags.get_int("runs"));

  std::cout << "Ablation — Gs edge types vs replay hit rate (" << runs
            << " runs/cycle)\n";
  TextTable table({"Benchmark", "Cycles", "D only", "D+P", "D+C", "full Gs"});

  for (const workloads::Benchmark& bench : workloads::standard_suite()) {
    if (bench.name == "cache4j" || bench.name == "Jigsaw") continue;
    auto trace = sim::record_trace(bench.program, seed, 50, bench.max_steps);
    if (!trace.has_value()) continue;
    Detection detection = detect(*trace);
    auto verdicts = prune(detection);

    double d_only = 0, dp = 0, dc = 0, full = 0;
    int measured = 0;
    for (std::size_t c = 0; c < detection.cycles.size(); ++c) {
      if (is_false(verdicts[c])) continue;
      GeneratorResult gen = generate(detection.cycles[c], detection.dep);
      if (!gen.feasible) continue;
      const std::uint64_t cycle_seed = mix64(seed + c);
      d_only += hit_rate_with(bench.program, detection, c,
                              filter_edges(gen.gs, true, false, false), runs,
                              cycle_seed, bench.max_steps);
      dp += hit_rate_with(bench.program, detection, c,
                          filter_edges(gen.gs, true, false, true), runs,
                          cycle_seed, bench.max_steps);
      dc += hit_rate_with(bench.program, detection, c,
                          filter_edges(gen.gs, true, true, false), runs,
                          cycle_seed, bench.max_steps);
      full += hit_rate_with(bench.program, detection, c, gen.gs, runs,
                            cycle_seed, bench.max_steps);
      ++measured;
    }
    if (measured == 0) continue;
    table.add_row({bench.name, std::to_string(measured),
                   TextTable::num(d_only / measured, 2),
                   TextTable::num(dp / measured, 2),
                   TextTable::num(dc / measured, 2),
                   TextTable::num(full / measured, 2)});
  }
  table.render(std::cout);
  std::cout << "\nexpected: full Gs >= D+C >= D+P >= D-only on average; the\n"
               "gap is the value of the trace-derived ordering edges.\n";
  return 0;
}
