// perf_serve — benchmark-gated perf harness for the `wolf serve` sidecar
// (serve/server.hpp): sessions × events/s × RSS for concurrent governed
// sessions streamed over a unix-domain socket, with the same rule every
// perf_* harness enforces — throughput only counts when the answer is
// byte-identical to the reference.
//
// One synthetic v3 trace (ordered worker pairs + a periodic AB/BA ring, so
// cycles exist and the canonical tuple set stays program-shaped) is encoded
// once, then streamed by N concurrent clients into one server, N ∈ {1, 4,
// 8}. Per scale the harness reports wall time, aggregate events/s, VmHWM
// growth, and the worst per-session p99 window latency — and *gates*:
//
//   * identity — every session's live transcript and verdict line must be
//     byte-identical to a solo wolf::Session run through the same protocol
//     builders (the socket adds transport, never new answers);
//   * completeness — every clean session ends complete;
//   * isolation — a torn client (killed mid-stream) gets an honest
//     incomplete verdict while a concurrent clean session still matches the
//     reference byte-for-byte and the server stays up.
//
// RSS is reported as the VmHWM delta over each scale (the payload bytes and
// reference transcript are built before the baseline is taken). Numbers
// from 1-CPU runners are honest numbers: clients and server handlers share
// the core, and nothing here gates on speed — only on truth.
//
//   perf_serve [--quick] [--events=N] [--out=BENCH_serve.json]
#include <algorithm>
#include <deque>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "support/flags.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_pool.hpp"
#include "trace/serialize.hpp"
#include "trace/trace_reader.hpp"
#include "wolf.hpp"

using namespace wolf;
using namespace wolf::serve;

namespace {

// Deterministic synthetic stream: four workers acquire globally ordered
// lock pairs at fixed per-(worker, slot) sites (canonical tuples dedup like
// real source locations), and every ring_every events two dedicated threads
// run the AB/BA pattern so the sessions have cycles to surface.
class ServeEventStream {
 public:
  explicit ServeEventStream(std::uint64_t ring_every)
      : ring_every_(ring_every) {}

  Event next() {
    if (pending_.empty()) {
      if (ring_every_ != 0 && emitted_ > 0 && emitted_ % ring_every_ == 0)
        ring();
      else
        pair();
    }
    Event e = pending_.front();
    pending_.pop_front();
    e.seq = emitted_++;
    return e;
  }

 private:
  void push(EventKind kind, ThreadId t, LockId l, SiteId site) {
    Event e;
    e.kind = kind;
    e.thread = t;
    e.lock = l;
    e.site = site;
    e.occurrence = 1;
    pending_.push_back(e);
  }

  void pair() {
    const auto t = static_cast<ThreadId>(1 + (step_ % 4));
    const int slot = static_cast<int>(step_ % 8);
    const auto la = static_cast<LockId>(10 + slot);
    const auto lb = static_cast<LockId>(20 + slot);  // la < lb: no cycle
    const auto s = static_cast<SiteId>(1000 + static_cast<int>(t) * 16 + slot);
    ++step_;
    push(EventKind::kLockAcquire, t, la, s);
    push(EventKind::kLockAcquire, t, lb, s + 8);
    push(EventKind::kLockRelease, t, lb, kInvalidSite);
    push(EventKind::kLockRelease, t, la, kInvalidSite);
  }

  void ring() {
    push(EventKind::kLockAcquire, 8, 100, 101);
    push(EventKind::kLockAcquire, 8, 101, 102);
    push(EventKind::kLockRelease, 8, 101, kInvalidSite);
    push(EventKind::kLockRelease, 8, 100, kInvalidSite);
    push(EventKind::kLockAcquire, 9, 101, 201);
    push(EventKind::kLockAcquire, 9, 100, 202);
    push(EventKind::kLockRelease, 9, 100, kInvalidSite);
    push(EventKind::kLockRelease, 9, 101, kInvalidSite);
  }

  std::uint64_t ring_every_;
  std::uint64_t emitted_ = 0;
  std::uint64_t step_ = 0;
  std::deque<Event> pending_;
};

// Encodes `events` synthetic events as v3 bytes block by block — the full
// Trace is never materialized, so the payload string is the only footprint.
std::string make_payload(std::uint64_t events) {
  ServeEventStream stream(std::max<std::uint64_t>(1, events / 64));
  std::ostringstream os;
  {
    StreamTraceWriter writer(os, TraceFormat::kV3);
    std::vector<Event> block;
    for (std::uint64_t i = 0; i < events; i += block.size()) {
      block.clear();
      const std::uint64_t n = std::min<std::uint64_t>(events - i, 4096);
      block.reserve(n);
      for (std::uint64_t j = 0; j < n; ++j) block.push_back(stream.next());
      writer.write(block);
    }
    writer.finish();
  }
  return std::move(os).str();
}

std::size_t peak_rss_bytes() {
  std::ifstream is("/proc/self/status");
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::size_t kb = 0;
      for (char c : line)
        if (c >= '0' && c <= '9')
          kb = kb * 10 + static_cast<std::size_t>(c - '0');
      return kb * 1024;
    }
  }
  return 0;
}

// The answer the server must give for this payload and config: the same
// Session, drained the same way, rendered through the same protocol
// builders the server uses (see tests/serve_test.cpp for the same pattern).
struct Transcript {
  std::vector<std::string> live;
  std::string verdict;
};

Transcript reference_transcript(const std::string& bytes, const Config& cfg) {
  Transcript out;
  Session session = Session::open(cfg);
  std::istringstream is(bytes);
  StreamTraceReader raw(is, StreamTraceReader::Mode::kSalvage);
  std::vector<Event> block;
  while (raw.next_block(block)) {
    session.feed(block);
    for (const SessionCycle& c : session.poll())
      out.live.push_back(live_line(c));
  }
  const std::uint64_t events = session.events_seen();
  Session::Verdict verdict = session.finish();
  for (const SessionCycle& c : session.poll())
    out.live.push_back(live_line(c));
  out.verdict = verdict_line(verdict, /*stream_complete=*/raw.complete(),
                             /*stream_note=*/std::string(), events);
  return out;
}

std::string chomp(std::string line) {
  if (!line.empty() && line.back() == '\n') line.pop_back();
  return line;
}

bool matches_reference(const EmitResult& r, const Transcript& ref) {
  if (r.verdict_line != chomp(ref.verdict)) return false;
  if (r.live_lines.size() != ref.live.size()) return false;
  for (std::size_t i = 0; i < ref.live.size(); ++i)
    if (r.live_lines[i] != chomp(ref.live[i])) return false;
  return true;
}

std::string unique_socket_path(int n) {
  return "/tmp/wolf-perfserve-" + std::to_string(n) + ".sock";
}

struct ScaleResult {
  int sessions = 0;
  double wall_seconds = 0;
  double events_per_s = 0;       // aggregate, all sessions
  double mevents_per_s = 0;
  double p99_window_ms_max = 0;  // worst session's p99 window latency
  std::size_t rss_growth_bytes = 0;
  bool identity_ok = false;
  bool complete_ok = false;
};

void write_json(std::ostream& os, bool quick, std::uint64_t events,
                const std::string& payload_desc, std::size_t payload_bytes,
                const std::vector<ScaleResult>& scales, bool torn_honest,
                bool torn_isolated, bool server_survived, bool ok) {
  os << "{\n"
     << "  \"bench\": \"perf_serve\",\n"
     << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
     << "  \"events_per_session\": " << events << ",\n"
     << "  \"payload_bytes\": " << payload_bytes << ",\n"
     << "  \"payload\": \"" << payload_desc << "\",\n"
     << "  \"hardware_concurrency\": " << ThreadPool::hardware_jobs() << ",\n"
     << "  \"scales\": [\n";
  for (std::size_t i = 0; i < scales.size(); ++i) {
    const ScaleResult& s = scales[i];
    os << "    {\"sessions\": " << s.sessions
       << ", \"wall_seconds\": " << s.wall_seconds
       << ", \"events_per_s\": " << s.events_per_s
       << ", \"mevents_per_s\": " << s.mevents_per_s
       << ",\n     \"p99_window_ms_max\": " << s.p99_window_ms_max
       << ", \"rss_growth_bytes\": " << s.rss_growth_bytes
       << ", \"identity_ok\": " << (s.identity_ok ? "true" : "false")
       << ", \"complete_ok\": " << (s.complete_ok ? "true" : "false") << "}"
       << (i + 1 < scales.size() ? "," : "") << '\n';
  }
  os << "  ],\n"
     << "  \"torn_client\": {\"honest_incomplete\": "
     << (torn_honest ? "true" : "false")
     << ", \"other_session_identical\": " << (torn_isolated ? "true" : "false")
     << ", \"server_survived\": " << (server_survived ? "true" : "false")
     << "},\n"
     << "  \"gates_ok\": " << (ok ? "true" : "false") << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_bool("quick", false, "CI smoke mode: 2*10^5 events/session");
  flags.define_int("events", 0,
                   "events per session (0 = 2*10^6, or 2*10^5 with --quick)");
  flags.define_int("window-events", 8192, "events per detection window");
  flags.define_string("out", "BENCH_serve.json", "JSON output path");
  if (!flags.parse(argc, argv)) return 1;

  const bool quick = flags.get_bool("quick");
  std::uint64_t events = static_cast<std::uint64_t>(flags.get_int("events"));
  if (events == 0) events = quick ? 200'000 : 2'000'000;

  ServeOptions options;
  options.max_sessions = 16;
  options.session.window_events =
      static_cast<std::size_t>(flags.get_int("window-events"));

  // Payload + reference first, so neither pollutes any scale's RSS delta.
  const std::string payload = make_payload(events);
  const Transcript ref = reference_transcript(payload, options.session);
  std::cout << "payload: " << events << " events, " << payload.size()
            << " bytes; reference: " << ref.live.size() << " live cycles\n";

  std::vector<ScaleResult> scales;
  bool ok = true;
  int socket_n = 0;

  for (int sessions : {1, 4, 8}) {
    options.socket_path = unique_socket_path(socket_n++);
    Server server(options);
    std::string error;
    if (!server.start(&error)) {
      std::cerr << "FAIL: server start: " << error << '\n';
      return 1;
    }

    ScaleResult scale;
    scale.sessions = sessions;
    const std::size_t rss_base = peak_rss_bytes();
    std::vector<EmitResult> results(static_cast<std::size_t>(sessions));
    Stopwatch wall;
    {
      std::vector<std::thread> clients;
      for (int i = 0; i < sessions; ++i)
        clients.emplace_back([&, i] {
          EmitOptions emit;
          emit.socket_path = options.socket_path;
          emit.name = "bench-" + std::to_string(i);
          emit.chunk_bytes = 256 * 1024;
          results[static_cast<std::size_t>(i)] =
              emit_trace_bytes(emit, payload);
        });
      for (std::thread& t : clients) t.join();
    }
    scale.wall_seconds = wall.seconds();
    scale.events_per_s = static_cast<double>(events) *
                         static_cast<double>(sessions) / scale.wall_seconds;
    scale.mevents_per_s = scale.events_per_s / 1e6;
    const std::size_t rss_after = peak_rss_bytes();
    scale.rss_growth_bytes = rss_after > rss_base ? rss_after - rss_base : 0;

    scale.identity_ok = true;
    scale.complete_ok = true;
    for (const EmitResult& r : results) {
      if (!r.ok() || !r.complete) scale.complete_ok = false;
      if (!matches_reference(r, ref)) scale.identity_ok = false;
    }
    for (const SessionStats& s : server.sessions())
      if (s.session_kind)
        scale.p99_window_ms_max =
            std::max(scale.p99_window_ms_max, s.p99_window_seconds * 1e3);

    server.stop();
    if (!scale.identity_ok) {
      std::cerr << "FAIL: sessions=" << sessions
                << " diverged from the solo reference transcript\n";
      ok = false;
    }
    if (!scale.complete_ok) {
      std::cerr << "FAIL: sessions=" << sessions
                << " had an incomplete clean session\n";
      ok = false;
    }
    std::cout << "sessions=" << sessions << ": " << scale.wall_seconds
              << " s, " << scale.mevents_per_s << " Mev/s aggregate, p99 "
              << scale.p99_window_ms_max << " ms, rss +"
              << static_cast<double>(scale.rss_growth_bytes) / 1e6
              << " MB, identity " << (scale.identity_ok ? "ok" : "DIVERGED")
              << '\n';
    scales.push_back(scale);
  }

  // Torn-client isolation: a mid-stream kill next to a clean session.
  bool torn_honest = false;
  bool torn_isolated = false;
  bool server_survived = false;
  {
    options.socket_path = unique_socket_path(socket_n++);
    Server server(options);
    std::string error;
    if (!server.start(&error)) {
      std::cerr << "FAIL: server start: " << error << '\n';
      return 1;
    }
    EmitResult torn;
    std::thread killer([&] {
      EmitOptions emit;
      emit.socket_path = options.socket_path;
      emit.name = "torn";
      emit.kill_after_bytes = static_cast<std::int64_t>(payload.size() / 2);
      torn = emit_trace_bytes(emit, payload);
    });
    EmitOptions clean;
    clean.socket_path = options.socket_path;
    clean.name = "clean";
    EmitResult clean_result = emit_trace_bytes(clean, payload);
    killer.join();
    torn_honest = torn.done && !torn.complete && !torn.verdict.stream_complete;
    torn_isolated = clean_result.ok() && clean_result.complete &&
                    matches_reference(clean_result, ref);
    server_survived = server.running();
    server.stop();
  }
  if (!torn_honest) {
    std::cerr << "FAIL: torn client did not get an honest incomplete verdict\n";
    ok = false;
  }
  if (!torn_isolated) {
    std::cerr << "FAIL: clean session next to a torn one diverged\n";
    ok = false;
  }
  if (!server_survived) {
    std::cerr << "FAIL: server died on a torn client\n";
    ok = false;
  }
  std::cout << "torn-client: honest="
            << (torn_honest ? "yes" : "NO") << ", isolated="
            << (torn_isolated ? "yes" : "NO") << ", server "
            << (server_survived ? "alive" : "DEAD") << '\n';

  const std::string out = flags.get_string("out");
  std::ofstream os(out);
  if (!os) {
    std::cerr << "cannot write " << out << '\n';
    return 1;
  }
  write_json(os, quick, events,
             "ordered worker pairs + AB/BA ring every events/64",
             payload.size(), scales, torn_honest, torn_isolated,
             server_survived, ok);
  std::cout << "wrote " << out << '\n';
  return ok ? 0 : 1;
}
