// perf_detect — benchmark-gated perf harness for the cycle enumeration
// engines (DESIGN.md §12).
//
// Builds synthetic lock-dependency workloads spanning the shapes that matter
// for enumeration cost, records one trace per workload, and times the
// enumeration step alone (D_σ construction and clock tracking are paid once,
// outside the timed region) for:
//
//   reference        — the original DFS over every canonical tuple (jobs=1);
//   scc              — SCC-partitioned bitset engine, jobs=1;
//   arena            — the same algorithm over arena-allocated SoA/CSR node
//                      state (support/arena.hpp), jobs=1;
//   scc-parN         — the scc engine at N-way enumeration parallelism;
//   scc+clock-cut    — jobs=1 with the Pruner's test folded into the search.
//
// Workloads:
//   ring     — k threads on a ring of k locks, chain degree d: one big
//              nontrivial SCC, combinatorially many cycles (enumeration-bound
//              in the cyclic region itself);
//   layered  — globally ordered lock pairs: a large acyclic D_σ with zero
//              cycles. The reference engine still DFS-chains from every
//              tuple up to the length cap; the SCC engine proves every
//              component trivial and does no search at all;
//   mixed    — the layered DAG with a small ring embedded: the largest
//              workload, and the honest speedup gate (cycles exist, but
//              almost all tuples are acyclic noise);
//   phased   — two thread generations separated by a join barrier sharing
//              one ring: every cross-generation cycle is infeasible, so the
//              in-search clock cut has real branches to kill.
//
// A replay_sharing section replays every feasible cycle of the mixed
// workload through the batch replayer (core/batch_replay.hpp) and reports
// how many re-executed steps the shared prefix removed versus independent
// per-cycle replay.
//
// Emits BENCH_detect.json (with hardware_concurrency recorded — on a 1-CPU
// container the parallel column is honestly ~1x). Exits 1 if any engine's
// cycle sequence diverges from the reference, or the clock-cut enumeration
// differs from the batch-pruned survivors: speed only counts when the answer
// is identical.
//
//   perf_detect [--quick] [--huge] [--jobs=N] [--out=BENCH_detect.json]
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/batch_replay.hpp"
#include "core/cycle_engine.hpp"
#include "core/detector.hpp"
#include "core/generator.hpp"
#include "core/pruner.hpp"
#include "robust/retry.hpp"
#include "sim/scheduler.hpp"
#include "support/flags.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

using namespace wolf;

namespace {

// k threads on a ring of k locks; thread i acquires (l_i, l_{(i+d) mod k})
// for d in 1..degree (same shape as perf_pipeline's stress workload).
void add_ring(sim::Program& p, int threads, int degree, const char* tag,
              ThreadId main, std::vector<ThreadId>& workers) {
  std::vector<LockId> ring;
  for (int i = 0; i < threads; ++i)
    ring.push_back(p.add_lock(std::string(tag) + "-lock-" + std::to_string(i),
                              p.site(std::string(tag) + ".ring", i)));
  std::vector<ThreadId> ts;
  for (int i = 0; i < threads; ++i)
    ts.push_back(p.add_thread(std::string(tag) + "-" + std::to_string(i)));
  for (int i = 0; i < threads; ++i) {
    ThreadId t = ts[static_cast<std::size_t>(i)];
    for (int d = 1; d <= degree; ++d) {
      const int j = (i + d) % threads;
      const int site_tag = i * 100 + d;
      p.lock(t, ring[static_cast<std::size_t>(i)],
             p.site(std::string(tag) + ".outer", site_tag));
      p.lock(t, ring[static_cast<std::size_t>(j)],
             p.site(std::string(tag) + ".inner", site_tag));
      p.unlock(t, ring[static_cast<std::size_t>(j)],
               p.site(std::string(tag) + ".innerX", site_tag));
      p.unlock(t, ring[static_cast<std::size_t>(i)],
               p.site(std::string(tag) + ".outerX", site_tag));
      p.compute(t, p.site(std::string(tag) + ".pause", site_tag));
    }
  }
  (void)main;
  workers.insert(workers.end(), ts.begin(), ts.end());
}

// Globally ordered nested pairs: thread t acquires (l_a, l_b) with a < b
// only, so the tuple digraph is a DAG — many tuples, zero cycles.
void add_layered(sim::Program& p, int threads, int locks, int pairs_per_thread,
                 std::vector<ThreadId>& workers) {
  std::vector<LockId> order;
  for (int i = 0; i < locks; ++i)
    order.push_back(
        p.add_lock("layer-lock-" + std::to_string(i), p.site("Layer.lock", i)));
  for (int t = 0; t < threads; ++t) {
    ThreadId tid = p.add_thread("layer-" + std::to_string(t));
    workers.push_back(tid);
    for (int k = 0; k < pairs_per_thread; ++k) {
      // Deterministic spread of ordered pairs across the lock ladder.
      const int a = (t * 7 + k * 3) % (locks - 1);
      const int b = a + 1 + (t + k) % (locks - 1 - a);
      const int site_tag = t * 1000 + k;
      p.lock(tid, order[static_cast<std::size_t>(a)],
             p.site("Layer.outer", site_tag));
      p.lock(tid, order[static_cast<std::size_t>(b)],
             p.site("Layer.inner", site_tag));
      p.unlock(tid, order[static_cast<std::size_t>(b)],
               p.site("Layer.innerX", site_tag));
      p.unlock(tid, order[static_cast<std::size_t>(a)],
               p.site("Layer.outerX", site_tag));
    }
  }
}

void start_join_all(sim::Program& p, ThreadId main,
                    const std::vector<ThreadId>& workers) {
  SiteId spawn = p.site("Main.spawn", 1);
  SiteId joinsite = p.site("Main.join", 2);
  for (ThreadId t : workers) p.start(main, t, spawn);
  for (ThreadId t : workers) p.join(main, t, joinsite);
}

sim::Program make_ring(int threads, int degree) {
  sim::Program p;
  p.name = "ring-" + std::to_string(threads) + "x" + std::to_string(degree);
  ThreadId main = p.add_thread("main");
  std::vector<ThreadId> workers;
  add_ring(p, threads, degree, "Ring", main, workers);
  start_join_all(p, main, workers);
  p.finalize();
  return p;
}

sim::Program make_layered(int threads, int locks, int pairs) {
  sim::Program p;
  p.name = "layered-" + std::to_string(threads) + "t" + std::to_string(locks) +
           "l";
  ThreadId main = p.add_thread("main");
  std::vector<ThreadId> workers;
  add_layered(p, threads, locks, pairs, workers);
  start_join_all(p, main, workers);
  p.finalize();
  return p;
}

sim::Program make_mixed(int layer_threads, int locks, int pairs,
                        int ring_threads, int ring_degree) {
  sim::Program p;
  p.name = "mixed-" + std::to_string(layer_threads) + "t+" +
           std::to_string(ring_threads) + "ring";
  ThreadId main = p.add_thread("main");
  std::vector<ThreadId> workers;
  add_layered(p, layer_threads, locks, pairs, workers);
  add_ring(p, ring_threads, ring_degree, "Ring", main, workers);
  start_join_all(p, main, workers);
  p.finalize();
  return p;
}

// Two generations on the same ring, separated by a join barrier: every
// cross-generation cycle is infeasible by Algorithm 2.
sim::Program make_phased(int threads_per_gen, int degree) {
  sim::Program p;
  p.name = "phased-2x" + std::to_string(threads_per_gen);
  ThreadId main = p.add_thread("main");

  std::vector<LockId> ring;
  for (int i = 0; i < threads_per_gen; ++i)
    ring.push_back(
        p.add_lock("phase-lock-" + std::to_string(i), p.site("Phase.lock", i)));

  SiteId spawn = p.site("Phase.spawn", 1);
  SiteId joinsite = p.site("Phase.join", 2);
  for (int gen = 0; gen < 2; ++gen) {
    std::vector<ThreadId> ts;
    for (int i = 0; i < threads_per_gen; ++i)
      ts.push_back(p.add_thread("gen" + std::to_string(gen) + "-" +
                                std::to_string(i)));
    for (int i = 0; i < threads_per_gen; ++i) {
      ThreadId t = ts[static_cast<std::size_t>(i)];
      for (int d = 1; d <= degree; ++d) {
        const int j = (i + d) % threads_per_gen;
        const int site_tag = gen * 10000 + i * 100 + d;
        p.lock(t, ring[static_cast<std::size_t>(i)],
               p.site("Phase.outer", site_tag));
        p.lock(t, ring[static_cast<std::size_t>(j)],
               p.site("Phase.inner", site_tag));
        p.unlock(t, ring[static_cast<std::size_t>(j)],
                 p.site("Phase.innerX", site_tag));
        p.unlock(t, ring[static_cast<std::size_t>(i)],
                 p.site("Phase.outerX", site_tag));
      }
    }
    // The barrier: generation gen is fully joined before gen+1 starts.
    for (ThreadId t : ts) p.start(main, t, spawn);
    for (ThreadId t : ts) p.join(main, t, joinsite);
  }
  p.finalize();
  return p;
}

std::string cycles_fingerprint(const std::vector<PotentialDeadlock>& cycles) {
  std::ostringstream os;
  for (const PotentialDeadlock& c : cycles) {
    for (std::size_t idx : c.tuple_idx) os << idx << ',';
    os << ';';
  }
  return os.str();
}

struct EngineSample {
  double seconds = 0;  // best-of-reps enumeration wall clock
  std::size_t cycles = 0;
  double cycles_per_second = 0;
  std::string fingerprint;
};

EngineSample time_engine(const LockDependency& dep,
                         const DetectorOptions& options,
                         const ClockTracker* clocks, int reps) {
  EngineSample sample;
  sample.seconds = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch watch;
    EnumerationResult result = enumerate_cycles_ex(dep, options, clocks);
    sample.seconds = std::min(sample.seconds, watch.seconds());
    if (rep == 0) {
      sample.cycles = result.cycles.size();
      sample.fingerprint = cycles_fingerprint(result.cycles);
    }
  }
  if (sample.seconds > 0)
    sample.cycles_per_second =
        static_cast<double>(sample.cycles) / sample.seconds;
  return sample;
}

struct WorkloadResult {
  std::string name;
  std::size_t events = 0;
  std::size_t tuples = 0;     // canonical
  std::size_t cycles = 0;     // full enumeration
  EngineSample reference;
  EngineSample scc;
  EngineSample arena;
  EngineSample scc_par;
  EngineSample clock_cut;
  std::size_t surviving_cycles = 0;  // batch-pruner survivors
  double speedup_scc = 0;      // reference / scc, both jobs=1
  double speedup_arena = 0;    // scc / arena, both jobs=1
  double speedup_par = 0;      // scc jobs=1 / scc jobs=N
  bool identical = false;      // ref == scc == arena == scc-par,
                               // clock cut == survivors
};

WorkloadResult measure(const sim::Program& program, int jobs, int reps,
                       std::uint64_t seed) {
  WorkloadResult r;
  r.name = program.name;

  robust::RetryPolicy retry;
  retry.max_attempts = 60;
  auto trace = sim::record_trace(program, seed, retry, 8'000'000);
  if (!trace.has_value()) {
    std::cerr << r.name << ": every recording run deadlocked; skipping\n";
    return r;
  }
  r.events = trace->size();

  // Build D_σ and the clocks once; only enumeration is timed.
  Detection det = detect(*trace);
  r.tuples = det.dep.unique.size();

  DetectorOptions options;
  options.engine = CycleEngine::kReference;
  r.reference = time_engine(det.dep, options, nullptr, reps);

  options.engine = CycleEngine::kScc;
  r.scc = time_engine(det.dep, options, nullptr, reps);

  options.engine = CycleEngine::kArenaScc;
  r.arena = time_engine(det.dep, options, nullptr, reps);

  options.engine = CycleEngine::kScc;
  options.jobs = jobs;
  r.scc_par = time_engine(det.dep, options, nullptr, reps);

  options.jobs = 1;
  options.clock_prune_during_search = true;
  r.clock_cut = time_engine(det.dep, options, &det.clocks, reps);

  r.cycles = r.reference.cycles;
  if (r.scc.seconds > 0) r.speedup_scc = r.reference.seconds / r.scc.seconds;
  if (r.arena.seconds > 0) r.speedup_arena = r.scc.seconds / r.arena.seconds;
  if (r.scc_par.seconds > 0) r.speedup_par = r.scc.seconds / r.scc_par.seconds;

  // The correctness gates: identical canonical sequence across engines and
  // jobs levels; clock-cut enumeration == the batch pruner's survivors.
  const std::vector<PruneVerdict> verdicts = prune(det);
  std::vector<PotentialDeadlock> survivors;
  for (std::size_t i = 0; i < det.cycles.size(); ++i)
    if (!is_false(verdicts[i])) survivors.push_back(det.cycles[i]);
  r.surviving_cycles = survivors.size();
  r.identical = r.reference.fingerprint == r.scc.fingerprint &&
                r.reference.fingerprint == r.arena.fingerprint &&
                r.reference.fingerprint == r.scc_par.fingerprint &&
                r.clock_cut.fingerprint == cycles_fingerprint(survivors);
  return r;
}

// Batch-replays up to `max_members` feasible cycles of one workload over
// shared re-execution prefixes and compares the step count against what the
// same trials would cost replayed independently.
struct ReplaySharingResult {
  std::string workload;
  std::size_t feasible = 0;  // generator-approved cycles in the detection
  std::size_t members = 0;   // batched (capped at max_members)
  int attempts = 0;
  std::size_t reproduced = 0;  // members whose deadlock was re-triggered
  std::uint64_t shared_steps = 0;
  std::uint64_t replayed_steps = 0;
  std::uint64_t naive_steps = 0;
  double savings = 0;
  bool ok = false;  // measured (>= 1 member) and replayed fewer steps
};

ReplaySharingResult measure_replay_sharing(const sim::Program& program,
                                           std::uint64_t seed,
                                           std::size_t max_members,
                                           int attempts) {
  ReplaySharingResult r;
  r.workload = program.name;

  robust::RetryPolicy retry;
  retry.max_attempts = 60;
  auto trace = sim::record_trace(program, seed, retry, 8'000'000);
  if (!trace.has_value()) return r;
  Detection det = detect(*trace);

  // One index serves every cycle's Gs construction (pipeline.cpp does the
  // same); gens owns the graphs the members point into.
  const DependencyIndex index = DependencyIndex::build(det.dep);
  std::vector<GeneratorResult> gens;
  std::vector<const PotentialDeadlock*> cycles;
  gens.reserve(det.cycles.size());
  for (const PotentialDeadlock& cycle : det.cycles) {
    GeneratorResult gen = generate(cycle, det.dep, index);
    if (!gen.feasible) continue;
    gens.push_back(std::move(gen));
    cycles.push_back(&cycle);
  }
  r.feasible = gens.size();
  r.members = std::min(max_members, gens.size());
  std::vector<BatchReplayMember> members;
  for (std::size_t i = 0; i < r.members; ++i)
    members.push_back(BatchReplayMember{cycles[i], &gens[i].gs});
  if (members.empty()) return r;

  ReplayOptions options;
  options.attempts = attempts;
  options.seed = seed;
  BatchReplayReport report = replay_batch(program, det.dep, members, options);
  r.attempts = report.attempts;
  for (const ReplayStats& s : report.stats)
    if (s.reproduced()) ++r.reproduced;
  r.shared_steps = report.shared_steps;
  r.replayed_steps = report.replayed_steps;
  r.naive_steps = report.naive_steps;
  r.savings = report.savings();
  r.ok = r.replayed_steps <= r.naive_steps;
  return r;
}

void sample_json(std::ostream& os, const char* key, const EngineSample& s,
                 const char* trail) {
  os << "      \"" << key << "\": {\"seconds\": " << s.seconds
     << ", \"cycles\": " << s.cycles
     << ", \"cycles_per_second\": " << s.cycles_per_second << "}" << trail
     << '\n';
}

void write_json(std::ostream& os, const std::vector<WorkloadResult>& results,
                const ReplaySharingResult& sharing, bool quick, bool huge,
                int jobs) {
  os << "{\n"
     << "  \"bench\": \"perf_detect\",\n"
     << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
     << "  \"huge\": " << (huge ? "true" : "false") << ",\n"
     << "  \"hardware_concurrency\": " << ThreadPool::hardware_jobs() << ",\n"
     << "  \"jobs\": " << jobs << ",\n"
     << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& r = results[i];
    os << "    {\n"
       << "      \"name\": \"" << r.name << "\",\n"
       << "      \"events\": " << r.events << ",\n"
       << "      \"canonical_tuples\": " << r.tuples << ",\n"
       << "      \"cycles\": " << r.cycles << ",\n"
       << "      \"surviving_cycles\": " << r.surviving_cycles << ",\n";
    sample_json(os, "reference", r.reference, ",");
    sample_json(os, "scc", r.scc, ",");
    sample_json(os, "arena", r.arena, ",");
    sample_json(os, "scc_parallel", r.scc_par, ",");
    sample_json(os, "scc_clock_cut", r.clock_cut, ",");
    os << "      \"speedup_scc_vs_reference\": " << r.speedup_scc << ",\n"
       << "      \"speedup_arena_vs_scc\": " << r.speedup_arena << ",\n"
       << "      \"speedup_parallel\": " << r.speedup_par << ",\n"
       << "      \"identical\": " << (r.identical ? "true" : "false") << '\n'
       << "    }" << (i + 1 < results.size() ? "," : "") << '\n';
  }
  os << "  ],\n"
     << "  \"replay_sharing\": {\n"
     << "    \"workload\": \"" << sharing.workload << "\",\n"
     << "    \"feasible_cycles\": " << sharing.feasible << ",\n"
     << "    \"members\": " << sharing.members << ",\n"
     << "    \"attempts\": " << sharing.attempts << ",\n"
     << "    \"reproduced\": " << sharing.reproduced << ",\n"
     << "    \"shared_steps\": " << sharing.shared_steps << ",\n"
     << "    \"replayed_steps\": " << sharing.replayed_steps << ",\n"
     << "    \"naive_steps\": " << sharing.naive_steps << ",\n"
     << "    \"savings\": " << sharing.savings << '\n'
     << "  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_bool("quick", false,
                    "CI smoke mode: smaller workloads, fewer reps");
  flags.define_bool("huge", false,
                    "scale the layered/mixed workloads up (~4x tuples) for "
                    "the arena-vs-heap comparison");
  flags.define_int("jobs", 0,
                   "enumeration parallelism for the scc-parN column "
                   "(0 = hardware concurrency, min 4 for the comparison)");
  flags.define_int("seed", 2014, "seed");
  flags.define_int("reps", 0, "timing repetitions (0 = 3 quick / 5 full)");
  flags.define_string("out", "BENCH_detect.json", "JSON output path");
  if (!flags.parse(argc, argv)) return 1;

  const bool quick = flags.get_bool("quick");
  const bool huge = flags.get_bool("huge");
  int jobs = static_cast<int>(flags.get_int("jobs"));
  if (jobs <= 0) jobs = std::max(4, ThreadPool::hardware_jobs());
  int reps = static_cast<int>(flags.get_int("reps"));
  if (reps <= 0) reps = quick ? 3 : (huge ? 2 : 5);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  std::vector<sim::Program> programs;
  if (quick) {
    programs.push_back(make_ring(8, 2));
    programs.push_back(make_layered(16, 20, 6));
    programs.push_back(make_mixed(16, 20, 6, 5, 2));
    programs.push_back(make_phased(4, 2));
  } else if (huge) {
    // The ring grows mildly (its cycle count is combinatorial in threads x
    // degree); the acyclic bulk — where arena locality matters — grows ~4x.
    programs.push_back(make_ring(13, 3));
    programs.push_back(make_layered(80, 96, 24));
    programs.push_back(make_mixed(80, 96, 24, 6, 2));
    programs.push_back(make_phased(8, 2));
  } else {
    programs.push_back(make_ring(12, 3));
    programs.push_back(make_layered(40, 48, 12));
    programs.push_back(make_mixed(40, 48, 12, 6, 2));
    programs.push_back(make_phased(6, 2));
  }

  std::vector<WorkloadResult> results;
  for (const sim::Program& program : programs)
    results.push_back(measure(program, jobs, reps, seed));

  // Replay-sharing measurement on the mixed workload: the embedded ring
  // yields several feasible cycles whose Gs graphs steer the same recorded
  // schedule, so prefixes actually coincide.
  const std::size_t mixed_index = 2;
  ReplaySharingResult sharing = measure_replay_sharing(
      programs[mixed_index], seed, /*max_members=*/8,
      /*attempts=*/quick ? 3 : 5);

  TextTable table({"Workload", "Tuples", "Cycles", "Reference", "SCC",
                   "SCC/ref", "Arena", "Par(" + std::to_string(jobs) + "j)",
                   "Clock-cut", "Identical"});
  for (const WorkloadResult& r : results)
    table.add_row({r.name, std::to_string(r.tuples), std::to_string(r.cycles),
                   TextTable::num(r.reference.seconds * 1e3, 2) + " ms",
                   TextTable::num(r.scc.seconds * 1e3, 2) + " ms",
                   TextTable::num(r.speedup_scc, 1) + "x",
                   TextTable::num(r.arena.seconds * 1e3, 2) + " ms (" +
                       TextTable::num(r.speedup_arena, 2) + "x)",
                   TextTable::num(r.speedup_par, 2) + "x",
                   TextTable::num(r.clock_cut.seconds * 1e3, 2) + " ms",
                   r.identical ? "yes" : "NO"});
  table.render(std::cout);

  std::cout << "\nreplay sharing (" << sharing.workload << "): "
            << sharing.members << "/" << sharing.feasible
            << " feasible cycles batched, " << sharing.reproduced
            << " reproduced; steps " << sharing.replayed_steps << " vs "
            << sharing.naive_steps << " naive ("
            << TextTable::num(sharing.savings * 100.0, 1) << "% saved, "
            << sharing.shared_steps << " shared)\n";

  const std::string out = flags.get_string("out");
  std::ofstream os(out);
  if (!os) {
    std::cerr << "cannot write " << out << '\n';
    return 1;
  }
  write_json(os, results, sharing, quick, huge, jobs);
  std::cout << "\nwrote " << out << " (hardware concurrency "
            << ThreadPool::hardware_jobs() << "; parallel column is ~1x on a "
            << "1-CPU machine)\n";

  bool all_identical = true;
  for (const WorkloadResult& r : results) all_identical &= r.identical;
  if (!all_identical) {
    std::cerr << "FAIL: engine outputs diverged\n";
    return 1;
  }
  if (!sharing.ok) {
    std::cerr << "FAIL: batch replay measured nothing or replayed more "
                 "steps than independent replay\n";
    return 1;
  }
  return 0;
}
