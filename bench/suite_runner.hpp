// Shared harness for the table/figure reproduction binaries: runs the WOLF
// and DeadlockFuzzer pipelines (and optionally the OS-thread slowdown
// measurement) over the standard benchmark suite.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "baseline/df_pipeline.hpp"
#include "core/pipeline.hpp"
#include "workloads/suite.hpp"

namespace wolf::bench {

struct SuiteOptions {
  std::uint64_t seed = 2014;   // PPoPP '14
  int replay_attempts = 6;     // per-cycle reproduction attempts (both tools)
  bool measure_slowdown = false;
  int slowdown_runs = 5;       // completed OS-thread runs per mode
};

struct BenchmarkOutcome {
  std::string name;
  workloads::PaperRow paper;
  WolfReport wolf;
  baseline::DfReport df;
  double slowdown = 0.0;  // measured instrumented/uninstrumented ratio
};

// Runs one benchmark through both pipelines.
BenchmarkOutcome run_benchmark(const workloads::Benchmark& benchmark,
                               const SuiteOptions& options);

// Runs the full standard suite.
std::vector<BenchmarkOutcome> run_suite(const SuiteOptions& options);

// OS-thread detection slowdown: instrumented recording run time over
// uninstrumented run time (completed runs only).
double measure_rt_slowdown(const sim::Program& program, std::uint64_t seed,
                           int runs);

}  // namespace wolf::bench
