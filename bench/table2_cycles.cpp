// Reproduces Table 2: the same WOLF vs DeadlockFuzzer comparison counting
// every cycle in the lock graph as a separate defect (the counting used by
// the DeadlockFuzzer paper, §4.3).
#include <cstdio>
#include <iostream>

#include "support/flags.hpp"
#include "support/table.hpp"
#include "suite_runner.hpp"

using namespace wolf;

int main(int argc, char** argv) {
  Flags flags;
  flags.define_int("seed", 2014, "pipeline seed");
  flags.define_int("attempts", 6, "reproduction attempts per cycle");
  if (!flags.parse(argc, argv)) return 1;

  bench::SuiteOptions options;
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  options.replay_attempts = static_cast<int>(flags.get_int("attempts"));
  options.measure_slowdown = false;

  std::cout << "Table 2 — cycle-level comparison (measured | paper)\n";
  TextTable table({"Benchmark", "Cycles", "FP WOLF", "TP WOLF", "TP DF",
                   "Unk WOLF", "Unk DF"});

  int tot_cycles = 0, tot_fp = 0, tot_tp_wolf = 0, tot_tp_df = 0,
      tot_unk_wolf = 0, tot_unk_df = 0;
  int p_cycles = 0, p_fp = 0, p_tp_wolf = 0, p_tp_df = 0, p_unk_wolf = 0,
      p_unk_df = 0;

  auto cell = [](int measured, int paper) {
    return std::to_string(measured) + " | " + std::to_string(paper);
  };

  for (const bench::BenchmarkOutcome& o : bench::run_suite(options)) {
    const int cycles = static_cast<int>(o.wolf.cycles.size());
    const int fp = o.wolf.false_positive_cycles();
    const int tp_wolf = o.wolf.count_cycles(Classification::kReproduced);
    const int unk_wolf = o.wolf.count_cycles(Classification::kUnknown);
    const int tp_df = o.df.count_cycles(Classification::kReproduced);
    const int unk_df = static_cast<int>(o.df.cycles.size()) - tp_df;

    table.add_row({o.name, cell(cycles, o.paper.cycles),
                   cell(fp, o.paper.cyc_fp_wolf),
                   cell(tp_wolf, o.paper.cyc_tp_wolf),
                   cell(tp_df, o.paper.cyc_tp_df),
                   cell(unk_wolf, o.paper.cyc_unknown_wolf),
                   cell(unk_df, o.paper.cyc_unknown_df)});

    tot_cycles += cycles;
    tot_fp += fp;
    tot_tp_wolf += tp_wolf;
    tot_tp_df += tp_df;
    tot_unk_wolf += unk_wolf;
    tot_unk_df += unk_df;
    p_cycles += o.paper.cycles;
    p_fp += o.paper.cyc_fp_wolf;
    p_tp_wolf += o.paper.cyc_tp_wolf;
    p_tp_df += o.paper.cyc_tp_df;
    p_unk_wolf += o.paper.cyc_unknown_wolf;
    p_unk_df += o.paper.cyc_unknown_df;
  }
  table.add_row({"Cumulative", cell(tot_cycles, p_cycles),
                 cell(tot_fp, p_fp), cell(tot_tp_wolf, p_tp_wolf),
                 cell(tot_tp_df, p_tp_df), cell(tot_unk_wolf, p_unk_wolf),
                 cell(tot_unk_df, p_unk_df)});
  table.render(std::cout);

  auto pct = [](int n, int total) {
    return total == 0 ? 0.0 : 100.0 * n / total;
  };
  std::printf(
      "\nmeasured: FP %.1f%% (paper 28.0%%), TP WOLF %.1f%% (paper 44.9%%), "
      "TP DF %.1f%% (paper 19.1%%), unknown WOLF %.1f%% (paper 27.1%%)\n",
      pct(tot_fp, tot_cycles), pct(tot_tp_wolf, tot_cycles),
      pct(tot_tp_df, tot_cycles), pct(tot_unk_wolf, tot_cycles));
  return 0;
}
