#include "suite_runner.hpp"

#include "core/online_sink.hpp"
#include "rt/executor.hpp"
#include "support/stats.hpp"
#include "support/stopwatch.hpp"

namespace wolf::bench {

namespace {

// Fans one event stream out to both the trace recorder and the online
// detection bookkeeping — the full instrumentation cost of the paper's
// detector.
class TeeSink final : public TraceSink {
 public:
  TeeSink(TraceSink& a, TraceSink& b) : a_(&a), b_(&b) {}
  void on_event(Event e) override {
    a_->on_event(e);
    b_->on_event(e);
  }

 private:
  TraceSink* a_;
  TraceSink* b_;
};

}  // namespace

BenchmarkOutcome run_benchmark(const workloads::Benchmark& benchmark,
                               const SuiteOptions& options) {
  BenchmarkOutcome outcome;
  outcome.name = benchmark.name;
  outcome.paper = benchmark.paper;

  WolfOptions wolf_options;
  wolf_options.seed = options.seed;
  wolf_options.replay.attempts = options.replay_attempts;
  wolf_options.max_steps = benchmark.max_steps;
  outcome.wolf = run_wolf(benchmark.program, wolf_options);

  baseline::DfOptions df_options;
  df_options.seed = mix64(options.seed ^ 0xdfULL);
  df_options.replay.attempts = options.replay_attempts;
  df_options.max_steps = benchmark.max_steps;
  outcome.df = baseline::run_deadlock_fuzzer(benchmark.program, df_options);

  if (options.measure_slowdown) {
    outcome.slowdown = measure_rt_slowdown(benchmark.slowdown_program,
                                           options.seed,
                                           options.slowdown_runs);
  }
  return outcome;
}

std::vector<BenchmarkOutcome> run_suite(const SuiteOptions& options) {
  std::vector<BenchmarkOutcome> outcomes;
  for (const workloads::Benchmark& b : workloads::standard_suite())
    outcomes.push_back(run_benchmark(b, options));
  return outcomes;
}

double measure_rt_slowdown(const sim::Program& program, std::uint64_t seed,
                           int runs) {
  Rng rng(seed);
  auto timed_run = [&](bool instrument, std::uint64_t run_seed) -> double {
    rt::ExecutorOptions options;
    options.instrument = instrument;
    options.seed = run_seed;
    TraceRecorder recorder;
    OnlineAnalysisSink analysis;
    TeeSink tee(recorder, analysis);
    if (instrument) options.sink = &tee;
    Stopwatch watch;
    sim::RunResult result = rt::execute(program, options);
    return result.outcome == sim::RunOutcome::kCompleted ? watch.seconds()
                                                         : 0.0;
  };
  // Paired design: each sample runs both modes back to back with the same
  // seed, so machine noise and scheduling variation hit both alike; the
  // reported slowdown is the median of the per-pair ratios. One warm-up
  // pair is discarded.
  (void)timed_run(false, seed);
  (void)timed_run(true, seed);
  Stats ratios;
  for (int i = 0; i < runs; ++i) {
    const std::uint64_t run_seed = rng();
    const double t0 = timed_run(false, run_seed);
    const double t1 = timed_run(true, run_seed);
    if (t0 > 0 && t1 > 0) ratios.add(t1 / t0);
  }
  return ratios.empty() ? 0.0 : ratios.median();
}

}  // namespace wolf::bench
