// perf_trace_io — benchmark-gated perf harness for the trace substrate
// (DESIGN.md §11): sharded lock-free recording, binary v3 serialization,
// and the end-to-end recording overhead on real OS threads.
//
// Three measurements, emitted as machine-readable BENCH_trace_io.json:
//
//   1. record — N threads hammer a mutex-serialized TraceRecorder vs the
//      lock-free ShardedTraceRecorder; events/sec for each and the speedup.
//      The merged sharded trace is checked to be a dense, seq-sorted stream
//      (exit 1 if not: speed only counts when the trace is right).
//   2. formats — suite-workload traces (plus a large synthetic one in full
//      mode) encoded and decoded in v2 and v3; bytes/event, encode/decode
//      MB/s, the v3:v2 size ratio, and a round-trip identity check.
//   3. decode_paths — one indexed v3 file decoded through every file read
//      path (buffered-serial, mmap-serial, mmap-indexed-parallel at jobs
//      2/4); MB/s over *total file bytes* for each, the reader's
//      mmap_used/index_present introspection, and an event-checksum identity
//      gate across all paths. --huge streams a 10^8-event file through this
//      section in O(block) memory (the events are never materialized).
//   4. rt_slowdown — a deadlock-free rt workload run uninstrumented, with
//      the serial recorder, and with the sharded recorder; paired seeds,
//      wall-clock slowdown factors vs uninstrumented.
//
// Numbers are reported for the machine the bench ran on —
// hardware_concurrency is in the JSON, so a 1-CPU container's contention
// figures are labeled as such rather than passed off as scalability.
//
//   perf_trace_io [--quick] [--huge] [--threads=N]
//                 [--out=BENCH_trace_io.json]
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rt/executor.hpp"
#include "support/flags.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "trace/recorder.hpp"
#include "trace/serialize.hpp"
#include "trace/sharded_recorder.hpp"
#include "trace/trace_reader.hpp"
#include "trace/wire.hpp"
#include "workloads/suite.hpp"

using namespace wolf;

namespace {

// The serial recorder made thread-safe the only way its contract allows: a
// mutex around every emission. This is the recording path the sharded sink
// replaces, reproduced here as the baseline.
class MutexRecorder final : public TraceSink {
 public:
  void on_event(Event e) override {
    std::lock_guard<std::mutex> lk(mu_);
    recorder_.on_event(e);
  }
  Trace take() {
    std::lock_guard<std::mutex> lk(mu_);
    return recorder_.take();
  }

 private:
  std::mutex mu_;
  TraceRecorder recorder_;
};

Event make_event(ThreadId t, std::uint64_t i) {
  Event e;
  e.kind = (i & 1) == 0 ? EventKind::kLockAcquire : EventKind::kLockRelease;
  e.thread = t;
  e.site = static_cast<SiteId>(i % 13);
  e.occurrence = static_cast<std::int32_t>(i / 13);
  e.lock = static_cast<LockId>(i % 7);
  return e;
}

// Emits `per_thread` events from each of `threads` threads into `sink`;
// returns wall seconds.
double hammer(TraceSink& sink, int threads, std::uint64_t per_thread) {
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  Stopwatch watch;
  for (int t = 0; t < threads; ++t)
    workers.emplace_back([&sink, t, per_thread] {
      for (std::uint64_t i = 0; i < per_thread; ++i)
        sink.on_event(make_event(static_cast<ThreadId>(t), i));
    });
  for (std::thread& w : workers) w.join();
  return watch.seconds();
}

struct RecordResult {
  int threads = 0;
  std::uint64_t events = 0;
  double mutex_mevents = 0;    // million events/sec
  double sharded_mevents = 0;  // million events/sec
  double speedup = 0;
  bool merge_ok = false;
};

RecordResult bench_record(int threads, std::uint64_t per_thread) {
  RecordResult r;
  r.threads = threads;
  r.events = per_thread * static_cast<std::uint64_t>(threads);

  MutexRecorder mutex_sink;
  const double mutex_s = hammer(mutex_sink, threads, per_thread);
  Trace mutex_trace = mutex_sink.take();

  ShardedTraceRecorder sharded_sink;
  const double sharded_s = hammer(sharded_sink, threads, per_thread);
  Trace sharded_trace = sharded_sink.take();

  r.mutex_mevents = static_cast<double>(r.events) / mutex_s / 1e6;
  r.sharded_mevents = static_cast<double>(r.events) / sharded_s / 1e6;
  r.speedup = r.sharded_mevents / r.mutex_mevents;

  // Both sinks must deliver a dense seq-sorted permutation of the tickets.
  r.merge_ok = sharded_trace.events.size() == r.events &&
               mutex_trace.events.size() == r.events;
  for (std::size_t i = 0; r.merge_ok && i < sharded_trace.events.size(); ++i)
    r.merge_ok = sharded_trace.events[i].seq == i;
  return r;
}

// Dense synthetic trace for the full-mode encoder stress: serializers only
// require strictly increasing seq, so lock discipline is irrelevant here.
Trace make_synthetic_trace(std::uint64_t events, std::uint64_t seed) {
  Rng rng(seed);
  Trace trace;
  trace.events.reserve(static_cast<std::size_t>(events));
  for (std::uint64_t i = 0; i < events; ++i) {
    Event e = make_event(static_cast<ThreadId>(rng.below(16)), i);
    e.seq = i;
    e.occurrence = static_cast<std::int32_t>(rng.below(200));
    trace.events.push_back(e);
  }
  return trace;
}

struct FormatSide {
  std::size_t bytes = 0;
  double bytes_per_event = 0;
  double encode_mb_s = 0;
  double decode_mb_s = 0;
};

struct FormatResult {
  std::string name;
  std::size_t events = 0;
  FormatSide v2, v3;
  double v3_to_v2_ratio = 0;  // v3 bytes / v2 bytes (lower is better)
  bool roundtrip_ok = false;
};

FormatSide measure_format(const Trace& trace, TraceFormat format, int reps,
                          bool& roundtrip_ok) {
  FormatSide side;
  std::string encoded;
  double encode_s = 1e30, decode_s = 1e30;
  for (int i = 0; i < reps; ++i) {
    Stopwatch watch;
    encoded = trace_to_string(trace, format);
    encode_s = std::min(encode_s, watch.seconds());
  }
  side.bytes = encoded.size();
  side.bytes_per_event = trace.events.empty()
                             ? 0
                             : static_cast<double>(side.bytes) /
                                   static_cast<double>(trace.events.size());
  std::optional<Trace> decoded;
  for (int i = 0; i < reps; ++i) {
    Stopwatch watch;
    decoded = trace_from_string(encoded);
    decode_s = std::min(decode_s, watch.seconds());
  }
  roundtrip_ok = decoded.has_value() && decoded->events == trace.events;
  const double mb = static_cast<double>(side.bytes) / 1e6;
  side.encode_mb_s = mb / encode_s;
  side.decode_mb_s = mb / decode_s;
  return side;
}

FormatResult bench_formats(const std::string& name, const Trace& trace,
                           int reps) {
  FormatResult r;
  r.name = name;
  r.events = trace.events.size();
  bool ok2 = false, ok3 = false;
  r.v2 = measure_format(trace, TraceFormat::kV2, reps, ok2);
  r.v3 = measure_format(trace, TraceFormat::kV3, reps, ok3);
  r.roundtrip_ok = ok2 && ok3;
  r.v3_to_v2_ratio =
      static_cast<double>(r.v3.bytes) / static_cast<double>(r.v2.bytes);
  return r;
}

// --- decode_paths: the file read paths of StreamTraceReader ---

struct DecodeRow {
  std::string label;
  int jobs = 1;
  double mb_s = 0;  // total file bytes / best wall time
  bool mmap_used = false;
  bool index_present = false;
  bool parallel_decode = false;
  bool identical = false;  // event count + checksum match the writer's
};

struct DecodePathsResult {
  std::uint64_t events = 0;
  std::size_t file_bytes = 0;
  std::vector<DecodeRow> rows;
  // Best indexed-parallel MB/s over buffered-serial MB/s.
  double indexed_parallel_speedup = 0;
};

// Streams `events` synthetic events through a StreamTraceWriter into an
// indexed v3 file; the trace is never materialized, so the huge regime
// stays O(block). Returns the whole-trace event checksum.
std::uint64_t write_synthetic_file(const std::string& path,
                                   std::uint64_t events, std::uint64_t seed) {
  std::ofstream os(path, std::ios::binary);
  StreamTraceWriter writer(os, TraceFormat::kV3);
  Rng rng(seed);
  std::uint64_t checksum = wire::kChecksumSeed;
  for (std::uint64_t i = 0; i < events; ++i) {
    Event e = make_event(static_cast<ThreadId>(rng.below(16)), i);
    e.seq = i;
    e.occurrence = static_cast<std::int32_t>(rng.below(200));
    writer.write(e);
    checksum = wire::checksum_event(checksum, e);
  }
  writer.finish();
  return checksum;
}

DecodeRow measure_decode_path(const std::string& path, std::string label,
                              bool allow_mmap, bool use_index, int jobs,
                              int reps, std::size_t file_bytes,
                              std::uint64_t want_events,
                              std::uint64_t want_checksum) {
  DecodeRow row;
  row.label = std::move(label);
  row.jobs = jobs;
  double best_s = 1e30;
  for (int rep = 0; rep < reps; ++rep) {
    StreamTraceReader::Options options;
    options.allow_mmap = allow_mmap;
    options.use_index = use_index;
    options.jobs = jobs;
    Stopwatch watch;
    StreamTraceReader reader(path, StreamTraceReader::Mode::kStrict, options);
    std::uint64_t checksum = wire::kChecksumSeed;
    std::uint64_t count = 0;
    std::vector<Event> block;
    while (reader.next_block(block)) {
      for (const Event& e : block)
        checksum = wire::checksum_event(checksum, e);
      count += block.size();
    }
    best_s = std::min(best_s, watch.seconds());
    row.identical =
        reader.ok() && count == want_events && checksum == want_checksum;
    row.mmap_used = reader.mmap_used();
    row.index_present = reader.index_present();
    row.parallel_decode = reader.parallel_decode();
  }
  row.mb_s = static_cast<double>(file_bytes) / 1e6 / best_s;
  return row;
}

DecodePathsResult bench_decode_paths(const std::string& tmp_path,
                                     std::uint64_t events, std::uint64_t seed,
                                     int reps) {
  DecodePathsResult r;
  r.events = events;
  const std::uint64_t checksum =
      write_synthetic_file(tmp_path, events, seed);
  {
    std::ifstream probe(tmp_path, std::ios::binary | std::ios::ate);
    r.file_bytes = static_cast<std::size_t>(probe.tellg());
  }
  r.rows.push_back(measure_decode_path(tmp_path, "buffered-serial",
                                       /*allow_mmap=*/false,
                                       /*use_index=*/false, 1, reps,
                                       r.file_bytes, events, checksum));
  r.rows.push_back(measure_decode_path(tmp_path, "mmap-serial",
                                       /*allow_mmap=*/true,
                                       /*use_index=*/false, 1, reps,
                                       r.file_bytes, events, checksum));
  for (int jobs : {2, 4})
    r.rows.push_back(measure_decode_path(
        tmp_path, "mmap-indexed-parallel", /*allow_mmap=*/true,
        /*use_index=*/true, jobs, reps, r.file_bytes, events, checksum));
  const double base = r.rows[0].mb_s;
  for (const DecodeRow& row : r.rows)
    if (row.parallel_decode && base > 0)
      r.indexed_parallel_speedup =
          std::max(r.indexed_parallel_speedup, row.mb_s / base);
  std::remove(tmp_path.c_str());
  return r;
}

struct SlowdownResult {
  std::string workload;
  int runs = 0;
  double uninstrumented_s = 0;
  double mutex_sink_s = 0;
  double sharded_sink_s = 0;
  double mutex_slowdown = 0;
  double sharded_slowdown = 0;
};

// Paired design like suite_runner's measure_rt_slowdown: every sample runs
// all three modes back to back on the same seed, so machine noise hits all
// alike. The program is the deadlock-free slowdown mirror, so every run
// completes.
SlowdownResult bench_rt_slowdown(const sim::Program& program,
                                 const std::string& name, int runs,
                                 std::uint64_t seed) {
  SlowdownResult r;
  r.workload = name;
  r.runs = runs;
  Rng rng(seed);
  auto timed = [&](TraceSink* sink, bool instrument,
                   std::uint64_t run_seed) -> double {
    rt::ExecutorOptions options;
    options.instrument = instrument;
    options.sink = sink;
    options.seed = run_seed;
    Stopwatch watch;
    sim::RunResult result = rt::execute(program, options);
    return result.outcome == sim::RunOutcome::kCompleted ? watch.seconds()
                                                         : 0.0;
  };
  for (int i = 0; i < runs; ++i) {
    const std::uint64_t run_seed = rng();
    r.uninstrumented_s += timed(nullptr, false, run_seed);
    MutexRecorder mutex_sink;
    r.mutex_sink_s += timed(&mutex_sink, true, run_seed);
    ShardedTraceRecorder sharded_sink;
    r.sharded_sink_s += timed(&sharded_sink, true, run_seed);
  }
  if (r.uninstrumented_s > 0) {
    r.mutex_slowdown = r.mutex_sink_s / r.uninstrumented_s;
    r.sharded_slowdown = r.sharded_sink_s / r.uninstrumented_s;
  }
  return r;
}

void write_json(std::ostream& os, bool quick, bool huge,
                const std::vector<RecordResult>& record,
                const std::vector<FormatResult>& formats,
                const DecodePathsResult& decode,
                const SlowdownResult& slowdown) {
  os << "{\n"
     << "  \"bench\": \"perf_trace_io\",\n"
     << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
     << "  \"huge\": " << (huge ? "true" : "false") << ",\n"
     << "  \"hardware_concurrency\": " << ThreadPool::hardware_jobs() << ",\n"
     << "  \"record\": [\n";
  for (std::size_t i = 0; i < record.size(); ++i) {
    const RecordResult& r = record[i];
    os << "    {\"threads\": " << r.threads << ", \"events\": " << r.events
       << ", \"mutex_mevents_per_s\": " << r.mutex_mevents
       << ", \"sharded_mevents_per_s\": " << r.sharded_mevents
       << ", \"sharded_speedup\": " << r.speedup
       << ", \"merge_ok\": " << (r.merge_ok ? "true" : "false") << "}"
       << (i + 1 < record.size() ? "," : "") << '\n';
  }
  os << "  ],\n"
     << "  \"formats\": [\n";
  for (std::size_t i = 0; i < formats.size(); ++i) {
    const FormatResult& f = formats[i];
    os << "    {\"name\": \"" << f.name << "\", \"events\": " << f.events
       << ",\n"
       << "     \"v2_bytes\": " << f.v2.bytes
       << ", \"v2_bytes_per_event\": " << f.v2.bytes_per_event
       << ", \"v2_encode_mb_s\": " << f.v2.encode_mb_s
       << ", \"v2_decode_mb_s\": " << f.v2.decode_mb_s << ",\n"
       << "     \"v3_bytes\": " << f.v3.bytes
       << ", \"v3_bytes_per_event\": " << f.v3.bytes_per_event
       << ", \"v3_encode_mb_s\": " << f.v3.encode_mb_s
       << ", \"v3_decode_mb_s\": " << f.v3.decode_mb_s << ",\n"
       << "     \"v3_to_v2_size_ratio\": " << f.v3_to_v2_ratio
       << ", \"roundtrip_identical\": " << (f.roundtrip_ok ? "true" : "false")
       << "}" << (i + 1 < formats.size() ? "," : "") << '\n';
  }
  os << "  ],\n"
     << "  \"decode_paths\": {\n"
     << "    \"events\": " << decode.events << ",\n"
     << "    \"file_bytes\": " << decode.file_bytes << ",\n"
     << "    \"rows\": [\n";
  for (std::size_t i = 0; i < decode.rows.size(); ++i) {
    const DecodeRow& row = decode.rows[i];
    os << "      {\"path\": \"" << row.label << "\", \"jobs\": " << row.jobs
       << ", \"mb_per_s\": " << row.mb_s
       << ", \"mmap_used\": " << (row.mmap_used ? "true" : "false")
       << ", \"index_present\": " << (row.index_present ? "true" : "false")
       << ", \"parallel_decode\": "
       << (row.parallel_decode ? "true" : "false")
       << ", \"identical\": " << (row.identical ? "true" : "false") << "}"
       << (i + 1 < decode.rows.size() ? "," : "") << '\n';
  }
  os << "    ],\n"
     << "    \"indexed_parallel_speedup\": "
     << decode.indexed_parallel_speedup << "\n"
     << "  },\n"
     << "  \"rt_slowdown\": {\n"
     << "    \"workload\": \"" << slowdown.workload << "\",\n"
     << "    \"runs\": " << slowdown.runs << ",\n"
     << "    \"uninstrumented_seconds\": " << slowdown.uninstrumented_s
     << ",\n"
     << "    \"mutex_sink_seconds\": " << slowdown.mutex_sink_s << ",\n"
     << "    \"sharded_sink_seconds\": " << slowdown.sharded_sink_s << ",\n"
     << "    \"mutex_slowdown\": " << slowdown.mutex_slowdown << ",\n"
     << "    \"sharded_slowdown\": " << slowdown.sharded_slowdown << "\n"
     << "  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_bool("quick", false,
                    "CI smoke mode: fewer events, fewer workloads");
  flags.define_bool("huge", false,
                    "10^8-event decode_paths regime (~1 GB temp file, "
                    "minutes of wall clock; events stream in O(block))");
  flags.define_int("threads", 0,
                   "recording threads (0 = max(4, hardware concurrency))");
  flags.define_int("seed", 2014, "seed");
  flags.define_string("out", "BENCH_trace_io.json", "JSON output path");
  if (!flags.parse(argc, argv)) return 1;

  const bool quick = flags.get_bool("quick");
  const bool huge = flags.get_bool("huge");
  int threads = static_cast<int>(flags.get_int("threads"));
  if (threads <= 0) threads = std::max(4, ThreadPool::hardware_jobs());
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const std::uint64_t per_thread = quick ? 100'000 : 500'000;
  const int reps = quick ? 2 : 5;

  // 1. Recording throughput, contended and uncontended.
  std::vector<RecordResult> record;
  record.push_back(bench_record(1, per_thread));
  record.push_back(bench_record(threads, per_thread));

  // 2. Serialization formats over real suite traces (+ synthetic in full).
  std::vector<FormatResult> formats;
  const auto suite = workloads::standard_suite();
  const std::vector<std::string> suite_names =
      quick ? std::vector<std::string>{"ArrayList", "HashMap"}
            : std::vector<std::string>{"ArrayList", "Stack", "HashMap",
                                       "TreeMap", "WeakHashMap"};
  robust::RetryPolicy retry;
  retry.max_attempts = 60;
  for (const std::string& name : suite_names) {
    const workloads::Benchmark& b = workloads::find_benchmark(suite, name);
    auto trace = sim::record_trace(b.program, seed, retry, b.max_steps);
    if (!trace.has_value()) {
      std::cerr << name << ": every recording run deadlocked; skipping\n";
      continue;
    }
    formats.push_back(bench_formats(name, *trace, reps));
  }
  formats.push_back(bench_formats(
      "synthetic",
      make_synthetic_trace(quick ? 100'000 : 1'000'000, mix64(seed)), reps));

  // 3. File decode paths over one indexed v3 file.
  const std::uint64_t decode_events =
      huge ? 100'000'000 : (quick ? 200'000 : 2'000'000);
  DecodePathsResult decode =
      bench_decode_paths(flags.get_string("out") + ".tmp.v3", decode_events,
                         mix64(seed ^ 0x5), huge ? 1 : (quick ? 2 : 3));

  // 4. End-to-end rt recording overhead.
  const workloads::Benchmark& hashmap =
      workloads::find_benchmark(suite, "HashMap");
  SlowdownResult slowdown = bench_rt_slowdown(
      hashmap.slowdown_program, "HashMap", quick ? 3 : 7, mix64(seed ^ 0x10));

  TextTable record_table({"Threads", "Events", "Mutex Mev/s", "Sharded Mev/s",
                          "Speedup", "Merge"});
  for (const RecordResult& r : record)
    record_table.add_row({std::to_string(r.threads), std::to_string(r.events),
                          TextTable::num(r.mutex_mevents, 2),
                          TextTable::num(r.sharded_mevents, 2),
                          TextTable::num(r.speedup, 2) + "x",
                          r.merge_ok ? "ok" : "BROKEN"});
  record_table.render(std::cout);
  std::cout << '\n';

  TextTable fmt_table({"Trace", "Events", "v2 B/ev", "v3 B/ev", "v3:v2",
                       "v3 dec MB/s", "Roundtrip"});
  for (const FormatResult& f : formats)
    fmt_table.add_row({f.name, std::to_string(f.events),
                       TextTable::num(f.v2.bytes_per_event, 1),
                       TextTable::num(f.v3.bytes_per_event, 1),
                       TextTable::num(f.v3_to_v2_ratio, 2),
                       TextTable::num(f.v3.decode_mb_s, 0),
                       f.roundtrip_ok ? "ok" : "BROKEN"});
  fmt_table.render(std::cout);
  std::cout << '\n';

  TextTable decode_table(
      {"Decode path", "Jobs", "MB/s", "mmap", "Index", "Parallel", "Events"});
  for (const DecodeRow& row : decode.rows)
    decode_table.add_row({row.label, std::to_string(row.jobs),
                          TextTable::num(row.mb_s, 0),
                          row.mmap_used ? "yes" : "no",
                          row.index_present ? "yes" : "no",
                          row.parallel_decode ? "yes" : "no",
                          row.identical ? "ok" : "BROKEN"});
  decode_table.render(std::cout);
  std::cout << "decode_paths: " << decode.events << " events, "
            << decode.file_bytes << " bytes, indexed-parallel speedup "
            << TextTable::num(decode.indexed_parallel_speedup, 2) << "x\n";

  std::cout << "\nrt slowdown (" << slowdown.workload << ", " << slowdown.runs
            << " paired runs): uninstrumented "
            << TextTable::num(slowdown.uninstrumented_s * 1e3, 1)
            << " ms, mutex sink " << TextTable::num(slowdown.mutex_slowdown, 2)
            << "x, sharded sink "
            << TextTable::num(slowdown.sharded_slowdown, 2) << "x\n";

  const std::string out = flags.get_string("out");
  std::ofstream os(out);
  if (!os) {
    std::cerr << "cannot write " << out << '\n';
    return 1;
  }
  write_json(os, quick, huge, record, formats, decode, slowdown);
  std::cout << "wrote " << out << " (hardware concurrency "
            << ThreadPool::hardware_jobs() << ")\n";

  // Correctness gates: perf only counts when the trace is right.
  bool ok = true;
  for (const RecordResult& r : record) ok &= r.merge_ok;
  for (const FormatResult& f : formats) ok &= f.roundtrip_ok;
  for (const DecodeRow& row : decode.rows) ok &= row.identical;
  if (!ok) {
    std::cerr << "FAIL: recording merge, format round-trip, or decode-path "
                 "identity broke\n";
    return 1;
  }
  return 0;
}
