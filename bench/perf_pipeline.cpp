// perf_pipeline — benchmark-gated perf harness for the parallel analysis
// engine (DESIGN.md §10).
//
// Runs the post-trace pipeline (detect → prune → generate → replay) over a
// set of workloads twice — once serial (--jobs 1) and once parallel — and
// emits machine-readable BENCH_pipeline.json with wall-clock and aggregate
// CPU seconds per phase, cycles/sec, and the classification-phase speedup,
// so the perf trajectory is tracked from PR 2 onward. The harness fails
// (exit 1) if the parallel classification is not byte-identical to serial:
// speed is only counted when the answer is the same.
//
// Workloads: a slice of the paper suite plus a synthetic many-cycle stress
// program (a ring of k locks where each thread chains into its `degree`
// successors, giving O(k·degree) conflicting lock pairs and hundreds of
// enumerable cycles — detection and classification load far beyond what the
// paper benchmarks produce).
//
// A third pass re-runs the parallel configuration with the observability
// layer armed (counters on, RunMetrics collected and serialized, exactly
// what --metrics-out does) and gates its overhead: the run fails if obs
// costs more than max(5% of the un-instrumented wall time, a 50 ms noise
// floor), or if instrumentation perturbs any classification.
// --metrics-out=<file> additionally writes the stress workload's metrics
// JSON for CI to archive.
//
//   perf_pipeline [--quick] [--jobs=N] [--out=BENCH_pipeline.json]
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/pipeline.hpp"
#include "obs/counters.hpp"
#include "obs/report.hpp"
#include "support/flags.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "workloads/collections.hpp"
#include "workloads/paper_examples.hpp"
#include "workloads/suite.hpp"

using namespace wolf;

namespace {

// Synthetic many-cycle stress workload. Threads t_0 … t_{k-1} share a ring
// of k locks; thread i acquires (l_i, l_{(i+d) mod k}) for every chain
// degree d in 1..degree. Any cyclic chain of forward hops that wraps the
// ring within the detector's cycle-length cap closes a potential deadlock,
// so the cycle count grows combinatorially with k and degree while each
// individual critical section stays tiny (recording completes easily).
sim::Program make_stress(int threads, int degree) {
  sim::Program p;
  p.name = "stress-" + std::to_string(threads) + "x" + std::to_string(degree);

  std::vector<LockId> ring;
  for (int i = 0; i < threads; ++i)
    ring.push_back(p.add_lock("ring-" + std::to_string(i),
                              p.site("Stress.ring", i)));

  ThreadId main = p.add_thread("main");
  std::vector<ThreadId> workers;
  for (int i = 0; i < threads; ++i)
    workers.push_back(p.add_thread("worker-" + std::to_string(i)));

  for (int i = 0; i < threads; ++i) {
    ThreadId t = workers[static_cast<std::size_t>(i)];
    for (int d = 1; d <= degree; ++d) {
      const int j = (i + d) % threads;
      const int tag = i * 100 + d;
      p.lock(t, ring[static_cast<std::size_t>(i)], p.site("Stress.outer", tag));
      p.lock(t, ring[static_cast<std::size_t>(j)], p.site("Stress.inner", tag));
      p.unlock(t, ring[static_cast<std::size_t>(j)],
               p.site("Stress.innerExit", tag));
      p.unlock(t, ring[static_cast<std::size_t>(i)],
               p.site("Stress.outerExit", tag));
      p.compute(t, p.site("Stress.pause", tag));
    }
  }

  SiteId spawn = p.site("Stress.spawn", 1);
  SiteId joinsite = p.site("Stress.join", 2);
  for (ThreadId t : workers) p.start(main, t, spawn);
  for (ThreadId t : workers) p.join(main, t, joinsite);

  p.finalize();
  return p;
}

// Everything classification-level a report asserts, in cycle order: if two
// runs agree on this string, they told the user the same thing.
std::string classification_fingerprint(const WolfReport& report) {
  std::ostringstream os;
  for (const CycleReport& c : report.cycles) {
    os << c.cycle_index << ':' << to_string(c.classification) << ':'
       << static_cast<int>(c.prune_verdict) << ':' << c.gs_vertices << ':'
       << c.replay_stats.attempts << ',' << c.replay_stats.hits << ','
       << c.replay_stats.other_deadlocks << ',' << c.replay_stats.no_deadlocks
       << ',' << c.replay_stats.step_limits << ',' << c.replay_stats.timeouts
       << ':' << c.failure_reason << '\n';
  }
  for (const DefectReport& d : report.defects) {
    os << "defect:";
    for (SiteId s : d.signature) os << s << ',';
    os << to_string(d.classification);
    for (std::size_t c : d.cycle_indices) os << ':' << c;
    os << '\n';
  }
  return os.str();
}

struct PhaseSample {
  double feasibility_wall = 0;
  double replay_wall = 0;
  double classify_wall = 0;
  double classify_cpu = 0;
  double prune_cpu = 0;
  double generate_cpu = 0;
  double replay_cpu = 0;
  double total_wall = 0;
  double cycles_per_second = 0;

  static PhaseSample of(const WolfReport& report, double total_wall) {
    PhaseSample s;
    s.feasibility_wall = report.timings.feasibility_wall_seconds;
    s.replay_wall = report.timings.replay_wall_seconds;
    s.classify_wall = report.timings.classify_wall_seconds();
    s.classify_cpu = report.timings.classify_cpu_seconds();
    s.prune_cpu = report.timings.prune_seconds;
    s.generate_cpu = report.timings.generate_seconds;
    s.replay_cpu = report.timings.replay_seconds;
    s.total_wall = total_wall;
    if (s.classify_wall > 0)
      s.cycles_per_second =
          static_cast<double>(report.cycles.size()) / s.classify_wall;
    return s;
  }

  void to_json(std::ostream& os, const std::string& indent) const {
    os << indent << "\"feasibility_wall_seconds\": " << feasibility_wall
       << ",\n"
       << indent << "\"replay_wall_seconds\": " << replay_wall << ",\n"
       << indent << "\"classify_wall_seconds\": " << classify_wall << ",\n"
       << indent << "\"classify_cpu_seconds\": " << classify_cpu << ",\n"
       << indent << "\"prune_cpu_seconds\": " << prune_cpu << ",\n"
       << indent << "\"generate_cpu_seconds\": " << generate_cpu << ",\n"
       << indent << "\"replay_cpu_seconds\": " << replay_cpu << ",\n"
       << indent << "\"total_wall_seconds\": " << total_wall << ",\n"
       << indent << "\"cycles_per_second\": " << cycles_per_second << '\n';
  }
};

struct WorkloadResult {
  std::string name;
  std::size_t events = 0;
  std::size_t tuples = 0;
  std::size_t cycles = 0;
  std::size_t defects = 0;
  double detect_seconds = 0;
  PhaseSample serial;
  PhaseSample parallel;
  PhaseSample obs;  // parallel again, with counters + metrics collection on
  bool identical = false;
  bool obs_identical = false;
  double speedup = 0;  // serial classify wall / parallel classify wall
  std::string metrics_json;  // full RunMetrics of the obs pass
};

WorkloadResult measure(const std::string& name, const sim::Program& program,
                       int jobs, int attempts, std::uint64_t seed,
                       std::uint64_t max_steps) {
  WorkloadResult result;
  result.name = name;

  robust::RetryPolicy record_retry;
  record_retry.max_attempts = 60;
  auto trace = sim::record_trace(program, seed, record_retry, max_steps);
  if (!trace.has_value()) {
    std::cerr << name << ": every recording run deadlocked; skipping\n";
    return result;
  }
  result.events = trace->size();

  WolfOptions options;
  options.seed = seed;
  options.replay.attempts = attempts;
  options.max_steps = max_steps;

  std::string fingerprints[2];
  for (int pass = 0; pass < 2; ++pass) {
    options.jobs = pass == 0 ? 1 : jobs;
    Stopwatch watch;
    WolfReport report = analyze_trace(program, *trace, options);
    const double total_wall = watch.seconds();
    fingerprints[pass] = classification_fingerprint(report);
    (pass == 0 ? result.serial : result.parallel) =
        PhaseSample::of(report, total_wall);
    if (pass == 0) {
      result.tuples = report.detection.dep.tuples.size();
      result.cycles = report.cycles.size();
      result.defects = report.defects.size();
      result.detect_seconds = report.timings.detect_seconds;
    }
  }
  result.identical = fingerprints[0] == fingerprints[1];
  if (result.parallel.classify_wall > 0)
    result.speedup = result.serial.classify_wall / result.parallel.classify_wall;

  // Pass 3 — the parallel configuration again with obs armed: counters
  // enabled, RunMetrics assembled and serialized, as --metrics-out would.
  // The serialization is inside the timed region on purpose: the gate
  // covers everything a user pays for.
  {
    options.jobs = jobs;
    obs::set_counters_enabled(true);
    obs::CounterSnapshot before = obs::CounterRegistry::instance().snapshot();
    Stopwatch watch;
    WolfReport report = analyze_trace(program, *trace, options);
    obs::RunMetrics metrics = collect_metrics(report);
    metrics.counters =
        obs::delta(obs::CounterRegistry::instance().snapshot(), before);
    result.metrics_json = obs::to_json(metrics);
    result.obs = PhaseSample::of(report, watch.seconds());
    obs::set_counters_enabled(false);
    result.obs_identical =
        classification_fingerprint(report) == fingerprints[0];
  }
  return result;
}

void write_json(std::ostream& os, const std::vector<WorkloadResult>& results,
                bool quick, int jobs) {
  os << "{\n"
     << "  \"bench\": \"perf_pipeline\",\n"
     << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
     << "  \"hardware_concurrency\": " << ThreadPool::hardware_jobs() << ",\n"
     << "  \"jobs\": " << jobs << ",\n"
     << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& r = results[i];
    os << "    {\n"
       << "      \"name\": \"" << r.name << "\",\n"
       << "      \"events\": " << r.events << ",\n"
       << "      \"tuples\": " << r.tuples << ",\n"
       << "      \"cycles\": " << r.cycles << ",\n"
       << "      \"defects\": " << r.defects << ",\n"
       << "      \"detect_seconds\": " << r.detect_seconds << ",\n"
       << "      \"serial\": {\n";
    r.serial.to_json(os, "        ");
    os << "      },\n"
       << "      \"parallel\": {\n";
    r.parallel.to_json(os, "        ");
    os << "      },\n"
       << "      \"obs\": {\n";
    r.obs.to_json(os, "        ");
    os << "      },\n"
       << "      \"classification_identical\": "
       << (r.identical ? "true" : "false") << ",\n"
       << "      \"obs_identical\": " << (r.obs_identical ? "true" : "false")
       << ",\n"
       << "      \"obs_overhead_seconds\": "
       << (r.obs.total_wall - r.parallel.total_wall) << ",\n"
       << "      \"classify_wall_speedup\": " << r.speedup << '\n'
       << "    }" << (i + 1 < results.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_bool("quick", false, "CI smoke mode: fewer workloads, fewer "
                                    "replay attempts");
  flags.define_int("jobs", 0,
                   "parallel jobs to compare against serial "
                   "(0 = hardware concurrency, min 4 for the comparison)");
  flags.define_int("seed", 2014, "seed");
  // Note: cycles only close when the ring wraps within the detector's
  // 5-thread cycle cap, i.e. threads <= 5 * degree.
  flags.define_int("stress-threads", 0,
                   "stress ring size (0 = 8 quick / 16 full)");
  flags.define_int("stress-degree", 0,
                   "stress chain degree (0 = 2 quick / 4 full)");
  flags.define_string("out", "BENCH_pipeline.json", "JSON output path");
  flags.define_string("metrics-out", "",
                      "also write the stress workload's RunMetrics JSON "
                      "(the obs pass) to this path");
  if (!flags.parse(argc, argv)) return 1;

  const bool quick = flags.get_bool("quick");
  // The classification-speedup gate assumes >= 4-way parallelism; keep the
  // comparison honest on small CI machines by never comparing below that.
  int jobs = static_cast<int>(flags.get_int("jobs"));
  if (jobs <= 0) jobs = std::max(4, ThreadPool::hardware_jobs());
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const int attempts = quick ? 3 : 6;
  int stress_threads = static_cast<int>(flags.get_int("stress-threads"));
  if (stress_threads <= 0) stress_threads = quick ? 8 : 16;
  int stress_degree = static_cast<int>(flags.get_int("stress-degree"));
  if (stress_degree <= 0) stress_degree = quick ? 2 : 4;

  std::vector<WorkloadResult> results;

  std::vector<std::string> suite_names =
      quick ? std::vector<std::string>{"ArrayList", "HashMap"}
            : std::vector<std::string>{"ArrayList", "Stack", "HashMap",
                                       "TreeMap", "WeakHashMap"};
  const auto suite = workloads::standard_suite();
  for (const std::string& name : suite_names) {
    const workloads::Benchmark& b = workloads::find_benchmark(suite, name);
    results.push_back(
        measure(name, b.program, jobs, attempts, seed, b.max_steps));
  }

  sim::Program stress = make_stress(stress_threads, stress_degree);
  results.push_back(
      measure(stress.name, stress, jobs, attempts, seed, 4'000'000));

  TextTable table({"Workload", "Cycles", "Classify wall (1j)",
                   "Classify wall (" + std::to_string(jobs) + "j)", "Speedup",
                   "Obs wall", "Cycles/s", "Identical"});
  for (const WorkloadResult& r : results)
    table.add_row({r.name, std::to_string(r.cycles),
                   TextTable::num(r.serial.classify_wall * 1e3, 1) + " ms",
                   TextTable::num(r.parallel.classify_wall * 1e3, 1) + " ms",
                   TextTable::num(r.speedup, 2) + "x",
                   TextTable::num(r.obs.total_wall * 1e3, 1) + " ms",
                   TextTable::num(r.parallel.cycles_per_second, 0),
                   r.identical && r.obs_identical ? "yes" : "NO"});
  table.render(std::cout);

  const std::string out = flags.get_string("out");
  std::ofstream os(out);
  if (!os) {
    std::cerr << "cannot write " << out << '\n';
    return 1;
  }
  write_json(os, results, quick, jobs);
  std::cout << "\nwrote " << out << " (hardware concurrency "
            << ThreadPool::hardware_jobs() << ", compared jobs=1 vs jobs="
            << jobs << ")\n";

  const std::string metrics_out = flags.get_string("metrics-out");
  if (!metrics_out.empty() && !results.empty()) {
    std::ofstream ms(metrics_out);
    if (!ms) {
      std::cerr << "cannot write " << metrics_out << '\n';
      return 1;
    }
    ms << results.back().metrics_json;
    std::cout << "wrote " << metrics_out << '\n';
  }

  bool all_identical = true;
  for (const WorkloadResult& r : results)
    all_identical &= r.identical && r.obs_identical;
  if (!all_identical) {
    std::cerr << "FAIL: parallel or instrumented classification diverged "
                 "from serial\n";
    return 1;
  }

  // Observability overhead gate: the instrumented pass may cost at most 5%
  // of the un-instrumented wall time, with a 50 ms floor so timer noise on
  // the sub-second quick runs cannot flake the gate.
  double base_wall = 0, obs_wall = 0;
  for (const WorkloadResult& r : results) {
    base_wall += r.parallel.total_wall;
    obs_wall += r.obs.total_wall;
  }
  const double allowed = std::max(0.05 * base_wall, 0.05);
  std::cout << "obs overhead: " << (obs_wall - base_wall) * 1e3 << " ms over "
            << base_wall * 1e3 << " ms base (allowed " << allowed * 1e3
            << " ms)\n";
  if (obs_wall - base_wall > allowed) {
    std::cerr << "FAIL: observability overhead exceeds the 5% gate\n";
    return 1;
  }
  return 0;
}
