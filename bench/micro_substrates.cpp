// Microbenchmarks for the execution substrates: virtual-thread scheduler
// throughput, recording overhead, replay-trial throughput, the systematic
// explorer, and the OS-thread executor.
#include <benchmark/benchmark.h>

#include "baseline/deadlock_fuzzer.hpp"
#include "core/replayer.hpp"
#include "explore/explorer.hpp"
#include "rt/executor.hpp"
#include "sim/scheduler.hpp"
#include "workloads/cache4j.hpp"
#include "workloads/collections.hpp"
#include "workloads/paper_examples.hpp"

namespace {

using namespace wolf;

sim::Program cache_program(int ops) {
  workloads::Cache4jConfig config;
  config.ops_per_thread = ops;
  return workloads::make_cache4j(config);
}

void BM_SchedulerSteps(benchmark::State& state) {
  sim::Program program = cache_program(static_cast<int>(state.range(0)));
  std::uint64_t steps = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::RandomPolicy policy;
    Rng rng(seed++);
    sim::RunResult result = sim::run_program(program, policy, rng);
    steps += result.steps;
    benchmark::DoNotOptimize(result.outcome);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_SchedulerSteps)->Arg(32)->Arg(256);

void BM_SchedulerRecording(benchmark::State& state) {
  sim::Program program = cache_program(static_cast<int>(state.range(0)));
  std::uint64_t seed = 1;
  std::uint64_t steps = 0;
  for (auto _ : state) {
    TraceRecorder recorder;
    sim::SchedulerOptions options;
    options.sink = &recorder;
    sim::RandomPolicy policy;
    Rng rng(seed++);
    sim::RunResult result = sim::run_program(program, policy, rng, options);
    steps += result.steps;
    benchmark::DoNotOptimize(recorder.trace().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_SchedulerRecording)->Arg(32)->Arg(256);

void BM_ReplayTrial(benchmark::State& state) {
  auto w = workloads::make_collections_list("ArrayList");
  auto trace = sim::record_trace(w.program, 7);
  WOLF_CHECK(trace.has_value());
  Detection detection = detect(*trace);
  WOLF_CHECK(!detection.cycles.empty());
  GeneratorResult gen = generate(detection.cycles[0], detection.dep);
  WOLF_CHECK(gen.feasible);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ReplayTrial trial = replay_once(w.program, detection.cycles[0],
                                    detection.dep, gen.gs, seed++);
    benchmark::DoNotOptimize(trial.outcome);
  }
}
BENCHMARK(BM_ReplayTrial);

void BM_FuzzTrial(benchmark::State& state) {
  auto w = workloads::make_collections_list("ArrayList");
  auto trace = sim::record_trace(w.program, 7);
  WOLF_CHECK(trace.has_value());
  Detection detection = detect(*trace);
  WOLF_CHECK(!detection.cycles.empty());
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ReplayTrial trial = baseline::fuzz_once(w.program, detection.cycles[0],
                                            detection.dep, seed++);
    benchmark::DoNotOptimize(trial.outcome);
  }
}
BENCHMARK(BM_FuzzTrial);

void BM_ExplorerFigure4(benchmark::State& state) {
  auto fig = workloads::make_figure4();
  std::uint64_t states = 0;
  for (auto _ : state) {
    explore::ExploreResult result = explore::explore(fig.program);
    states += result.states;
    benchmark::DoNotOptimize(result.deadlock_signatures.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(states));
}
BENCHMARK(BM_ExplorerFigure4);

void BM_ExplorerPhilosophers(benchmark::State& state) {
  auto w = workloads::make_philosophers(static_cast<int>(state.range(0)));
  std::uint64_t states = 0;
  for (auto _ : state) {
    explore::ExploreResult result = explore::explore(w.program);
    states += result.states;
    benchmark::DoNotOptimize(result.deadlock_states);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(states));
}
BENCHMARK(BM_ExplorerPhilosophers)->Arg(2)->Arg(3);

void BM_RtExecute(benchmark::State& state) {
  sim::Program program = cache_program(64);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    rt::ExecutorOptions options;
    options.instrument = state.range(0) != 0;
    options.seed = seed++;
    TraceRecorder recorder;
    if (options.instrument) options.sink = &recorder;
    sim::RunResult result = rt::execute(program, options);
    benchmark::DoNotOptimize(result.outcome);
  }
}
BENCHMARK(BM_RtExecute)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
