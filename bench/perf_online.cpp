// perf_online — benchmark-gated perf harness for resource-governed online
// detection (core/governor.hpp): the SLO the robustness work promises is
// "10^7 events stream through a fixed memory budget, with bounded-latency
// windows and an honest verdict", and this harness measures exactly that,
// emitting machine-readable BENCH_online.json.
//
// Three scenarios over the same synthetic event stream (regenerated from
// the same seed each time, never materialized — 10^7 events as a vector
// would dominate the RSS this bench is supposed to measure):
//
//   1. budgeted  — hard memory budget; run FIRST so the recorded peak RSS
//      (VmHWM) reflects governed ingestion, not a later unbounded run.
//      Reports Mev/s, per-window p50/p99 detection latency, peak tuple
//      store vs budget, evictions, and the honesty bits.
//   2. unbounded — no budget, no deadline; the final detection must match
//      plain StreamingDetector cycle for cycle (the differential gate:
//      speed only counts when the answer is right).
//   3. deadline  — small windows under a per-window deadline; reports how
//      far the degradation ladder moved and how many windows degraded.
//   4. shed      — a stream whose canonical tuple set outgrows a small
//      budget, forcing the aging rung; gates that eviction always came
//      with an honest incomplete-coverage verdict.
//
// The stream: worker threads acquire locks in globally ordered depth bands
// (shared locks, no accidental cycles) from a small per-(thread, depth)
// choice set, each choice tagged with a fixed site — like source locations
// in a real program, so canonical tuples dedup heavily while the raw tuple
// store still grows with every acquire (that growth is what the budget
// governs). A phase counter rotates the site namespace a few times per run
// so the canonical set keeps growing across the whole stream. A scripted
// AB/BA ring on two dedicated threads every ring_every events — fixed
// sites — dedups to a handful of canonical tuples and a stable cycle set.
//
//   perf_online [--quick] [--events=N] [--budget-mb=N]
//               [--out=BENCH_online.json]
#include <algorithm>
#include <deque>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/governor.hpp"
#include "support/flags.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

using namespace wolf;

namespace {

// Deterministic synthetic event source. Workers acquire locks whose ids
// rise with nesting depth (so workers alone never deadlock) and release in
// LIFO order. Each (thread, depth) has kChoices fixed lock/site options —
// a fixed code location per option, the way call sites repeat in a real
// program — so the canonical tuple set stays in the low thousands while
// raw tuples accumulate with every acquire. phase_every rotates the site
// namespace so the canonical set keeps growing over a long run instead of
// saturating in the first windows. Every ring_every events two dedicated
// threads run the classic AB/BA pattern on fixed sites.
class OnlineEventStream {
 public:
  OnlineEventStream(int workers, int locks, std::uint64_t phase_every,
                    std::uint64_t ring_every, std::uint64_t seed)
      : workers_(workers), locks_(locks), phase_every_(phase_every),
        ring_every_(ring_every), rng_(seed) {
    held_.resize(static_cast<std::size_t>(workers));
  }

  Event next() {
    if (pending_.empty()) {
      if (ring_every_ != 0 && emitted_ > 0 && emitted_ % ring_every_ == 0)
        script_ring();
      else
        step_worker();
    }
    Event e = pending_.front();
    pending_.pop_front();
    e.seq = emitted_++;
    return e;
  }

 private:
  static constexpr int kMaxDepth = 4;
  static constexpr int kChoices = 3;

  void push(EventKind kind, ThreadId t, LockId l, SiteId site) {
    Event e;
    e.kind = kind;
    e.thread = t;
    e.lock = l;
    e.site = site;
    e.occurrence = 1;
    pending_.push_back(e);
  }

  // Depth d draws from lock band [d*locks/kMaxDepth, ...): globally
  // ordered, so worker threads share locks without forming cycles.
  LockId lock_at(ThreadId t, int depth, int choice) const {
    const int band = locks_ / kMaxDepth;
    return static_cast<LockId>(depth * band +
                               (static_cast<int>(t) * kChoices + choice) %
                                   band);
  }

  // Fixed "source location" per (phase, thread, depth, choice): contexts
  // are paths through these locations, so canonical tuples per phase are
  // bounded by workers * sum_d kChoices^(d+1) — low thousands, like a real
  // program — rather than growing with the event count.
  SiteId site_at(ThreadId t, int depth, int choice) const {
    const std::uint64_t phase =
        phase_every_ == 0 ? 0 : emitted_ / phase_every_;
    return static_cast<SiteId>(
        1000 +
        ((phase * static_cast<std::uint64_t>(workers_) +
          static_cast<std::uint64_t>(t)) *
             kMaxDepth +
         static_cast<std::uint64_t>(depth)) *
            kChoices +
        static_cast<std::uint64_t>(choice));
  }

  void step_worker() {
    const auto t = static_cast<ThreadId>(rr_++ % static_cast<std::uint64_t>(
                                                     workers_));
    auto& stack = held_[static_cast<std::size_t>(t)];
    const bool acquire =
        stack.empty() ||
        (stack.size() < kMaxDepth && rng_.chance(0.55));
    if (acquire) {
      const auto depth = static_cast<int>(stack.size());
      const auto choice = static_cast<int>(rng_.below(kChoices));
      push(EventKind::kLockAcquire, t, lock_at(t, depth, choice),
           site_at(t, depth, choice));
      stack.push_back(lock_at(t, depth, choice));
    } else {
      push(EventKind::kLockRelease, t, stack.back(), kInvalidSite);
      stack.pop_back();
    }
  }

  void script_ring() {
    // Two dedicated threads beyond the worker pool, two dedicated locks
    // beyond the ordered ranges, fixed sites: every injection dedups onto
    // the same canonical tuples, keeping the cycle set stable.
    const auto ta = static_cast<ThreadId>(workers_);
    const auto tb = static_cast<ThreadId>(workers_ + 1);
    const auto ra = static_cast<LockId>(locks_);
    const auto rb = static_cast<LockId>(locks_ + 1);
    push(EventKind::kLockAcquire, ta, ra, 101);
    push(EventKind::kLockAcquire, ta, rb, 102);
    push(EventKind::kLockRelease, ta, rb, kInvalidSite);
    push(EventKind::kLockRelease, ta, ra, kInvalidSite);
    push(EventKind::kLockAcquire, tb, rb, 201);
    push(EventKind::kLockAcquire, tb, ra, 202);
    push(EventKind::kLockRelease, tb, ra, kInvalidSite);
    push(EventKind::kLockRelease, tb, rb, kInvalidSite);
  }

  int workers_;
  int locks_;
  std::uint64_t phase_every_;
  std::uint64_t ring_every_;
  Rng rng_;
  std::uint64_t rr_ = 0;
  std::uint64_t emitted_ = 0;
  std::deque<Event> pending_;
  std::vector<std::vector<LockId>> held_;
};

// VmHWM from /proc/self/status — the high-water mark of resident memory,
// in bytes (0 where /proc is unavailable; the JSON then says so).
std::size_t peak_rss_bytes() {
  std::ifstream is("/proc/self/status");
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::size_t kb = 0;
      for (char c : line)
        if (c >= '0' && c <= '9') kb = kb * 10 + static_cast<std::size_t>(c - '0');
      return kb * 1024;
    }
  }
  return 0;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

struct ScenarioResult {
  std::string name;
  std::uint64_t events = 0;
  double mevents_per_s = 0;
  std::size_t windows = 0;
  double p50_detect_ms = 0;
  double p99_detect_ms = 0;
  std::size_t peak_store_bytes = 0;
  std::size_t budget_bytes = 0;
  std::size_t tuples_evicted = 0;
  std::size_t degraded_windows = 0;
  std::size_t detection_faults = 0;
  bool coverage_complete = false;
  std::string final_level;
  std::size_t cycles = 0;
  std::size_t peak_rss_bytes = 0;  // VmHWM right after the run
};

OnlineEventStream make_stream(std::uint64_t events, std::uint64_t seed,
                              std::uint64_t phases = 8) {
  // Eight phases by default: the canonical set grows stepwise across the
  // whole run (so compaction keeps having fresh duplicates to fold, and
  // the budget accounting is exercised throughout), while the ring fires
  // often enough that suspicious windows trigger incremental enumeration
  // all along. The shed scenario passes more phases so the canonical set
  // itself outgrows the budget and aging has to evict.
  return OnlineEventStream(/*workers=*/8, /*locks=*/48,
                           /*phase_every=*/std::max<std::uint64_t>(1, events / phases),
                           /*ring_every=*/std::max<std::uint64_t>(1, events / 64),
                           seed);
}

ScenarioResult run_scenario(const std::string& name, std::uint64_t events,
                            std::uint64_t seed, const GovernorOptions& options,
                            Detection* out_detection = nullptr,
                            std::uint64_t phases = 8) {
  ScenarioResult r;
  r.name = name;
  r.events = events;
  r.budget_bytes = options.memory_budget_mb << 20;

  OnlineEventStream stream = make_stream(events, seed, phases);
  GovernedStreamingDetector governed(options);
  Stopwatch watch;
  for (std::uint64_t i = 0; i < events; ++i) governed.add(stream.next());
  Detection detection = governed.finish();
  const double seconds = watch.seconds();

  r.mevents_per_s = static_cast<double>(events) / seconds / 1e6;
  const GovernorVerdict& verdict = governed.verdict();
  r.windows = verdict.windows;
  r.tuples_evicted = verdict.tuples_evicted;
  r.degraded_windows = verdict.degraded_windows;
  r.detection_faults = verdict.detection_faults;
  r.coverage_complete = verdict.coverage_complete;
  r.final_level = to_string(verdict.final_level);
  r.cycles = detection.cycles.size();

  std::vector<double> detect_ms;
  detect_ms.reserve(governed.windows().size());
  for (const WindowReport& w : governed.windows()) {
    detect_ms.push_back(w.detect_seconds * 1e3);
    r.peak_store_bytes = std::max(r.peak_store_bytes, w.store_bytes);
  }
  r.p50_detect_ms = percentile(detect_ms, 0.50);
  r.p99_detect_ms = percentile(detect_ms, 0.99);
  r.peak_rss_bytes = peak_rss_bytes();
  if (out_detection != nullptr) *out_detection = std::move(detection);
  return r;
}

void write_json(std::ostream& os, bool quick, std::uint64_t events,
                const std::vector<ScenarioResult>& scenarios,
                bool differential_ok) {
  os << "{\n"
     << "  \"bench\": \"perf_online\",\n"
     << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
     << "  \"events\": " << events << ",\n"
     << "  \"hardware_concurrency\": " << ThreadPool::hardware_jobs() << ",\n"
     << "  \"differential_vs_batch_ok\": "
     << (differential_ok ? "true" : "false") << ",\n"
     << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const ScenarioResult& s = scenarios[i];
    os << "    {\"name\": \"" << s.name << "\", \"events\": " << s.events
       << ",\n"
       << "     \"mevents_per_s\": " << s.mevents_per_s
       << ", \"windows\": " << s.windows
       << ", \"p50_window_detect_ms\": " << s.p50_detect_ms
       << ", \"p99_window_detect_ms\": " << s.p99_detect_ms << ",\n"
       << "     \"budget_bytes\": " << s.budget_bytes
       << ", \"peak_store_bytes\": " << s.peak_store_bytes
       << ", \"peak_rss_bytes\": " << s.peak_rss_bytes << ",\n"
       << "     \"tuples_evicted\": " << s.tuples_evicted
       << ", \"degraded_windows\": " << s.degraded_windows
       << ", \"detection_faults\": " << s.detection_faults
       << ", \"coverage_complete\": "
       << (s.coverage_complete ? "true" : "false")
       << ", \"final_level\": \"" << s.final_level << "\""
       << ", \"cycles\": " << s.cycles << "}"
       << (i + 1 < scenarios.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_bool("quick", false, "CI smoke mode: 10^6 events");
  flags.define_int("events", 0, "event count (0 = 10^7, or 10^6 with --quick)");
  flags.define_int("budget-mb", 0,
                   "memory budget for the budgeted scenario "
                   "(0 = 16 full / 2 quick)");
  flags.define_int("seed", 2014, "stream seed");
  flags.define_string("out", "BENCH_online.json", "JSON output path");
  if (!flags.parse(argc, argv)) return 1;

  const bool quick = flags.get_bool("quick");
  std::uint64_t events = static_cast<std::uint64_t>(flags.get_int("events"));
  if (events == 0) events = quick ? 1'000'000 : 10'000'000;
  std::size_t budget_mb = static_cast<std::size_t>(flags.get_int("budget-mb"));
  if (budget_mb == 0) budget_mb = quick ? 2 : 16;
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  std::vector<ScenarioResult> scenarios;

  // 1. Budgeted — first, so VmHWM is the governed run's peak.
  GovernorOptions budgeted;
  budgeted.memory_budget_mb = budget_mb;
  scenarios.push_back(run_scenario("budgeted", events, seed, budgeted));

  // 2. Unbounded + differential gate vs plain streaming detection.
  GovernorOptions unbounded;
  Detection governed_detection;
  scenarios.push_back(run_scenario("unbounded", events, seed, unbounded,
                                   &governed_detection));

  StreamingDetector batch;
  {
    OnlineEventStream stream = make_stream(events, seed);
    for (std::uint64_t i = 0; i < events; ++i) batch.add(stream.next());
  }
  Detection batch_detection = batch.finish();
  bool differential_ok =
      governed_detection.cycles.size() == batch_detection.cycles.size();
  for (std::size_t i = 0; differential_ok &&
                          i < governed_detection.cycles.size();
       ++i)
    differential_ok = governed_detection.cycles[i].tuple_idx ==
                      batch_detection.cycles[i].tuple_idx;

  // 3. Deadline pressure on small windows.
  GovernorOptions deadline;
  deadline.window_events = 8192;
  deadline.window_deadline_ms = 1;
  scenarios.push_back(run_scenario("deadline", events, seed, deadline));

  // 4. Shedding — a 64-phase stream whose canonical tuple set alone
  // outgrows a small budget, so compaction cannot save it and aging must
  // evict; the honest verdict (coverage_complete = false) is gated below.
  GovernorOptions shed;
  shed.memory_budget_mb = 2;
  scenarios.push_back(run_scenario("shed", events, seed, shed,
                                   /*out_detection=*/nullptr, /*phases=*/64));

  TextTable table({"Scenario", "Mev/s", "Windows", "p50 ms", "p99 ms",
                   "Peak store", "Budget", "Evicted", "Complete", "Cycles"});
  for (const ScenarioResult& s : scenarios)
    table.add_row({s.name, TextTable::num(s.mevents_per_s, 2),
                   std::to_string(s.windows),
                   TextTable::num(s.p50_detect_ms, 2),
                   TextTable::num(s.p99_detect_ms, 2),
                   TextTable::num(static_cast<double>(s.peak_store_bytes) / 1e6,
                                  1) + " MB",
                   s.budget_bytes == 0
                       ? std::string("-")
                       : TextTable::num(
                             static_cast<double>(s.budget_bytes) / 1e6, 1) +
                             " MB",
                   std::to_string(s.tuples_evicted),
                   s.coverage_complete ? "yes" : "NO (reported)",
                   std::to_string(s.cycles)});
  table.render(std::cout);
  std::cout << "\ndifferential vs batch: "
            << (differential_ok ? "identical" : "DIVERGED") << ", peak RSS "
            << TextTable::num(
                   static_cast<double>(scenarios[0].peak_rss_bytes) / 1e6, 1)
            << " MB after the budgeted run\n";

  const std::string out = flags.get_string("out");
  std::ofstream os(out);
  if (!os) {
    std::cerr << "cannot write " << out << '\n';
    return 1;
  }
  write_json(os, quick, events, scenarios, differential_ok);
  std::cout << "wrote " << out << '\n';

  // Correctness gates: throughput only counts when the contract held.
  bool ok = differential_ok;
  for (const ScenarioResult& s : scenarios) {
    if (s.budget_bytes > 0 && s.peak_store_bytes > s.budget_bytes) {
      std::cerr << "FAIL: " << s.name << " exceeded its memory budget\n";
      ok = false;
    }
    if (s.tuples_evicted > 0 && s.coverage_complete) {
      std::cerr << "FAIL: " << s.name
                << " evicted without an incomplete-coverage verdict\n";
      ok = false;
    }
  }
  if (scenarios.back().tuples_evicted == 0) {
    std::cerr << "FAIL: shed scenario never hit the aging rung\n";
    ok = false;
  }
  if (!differential_ok)
    std::cerr << "FAIL: governed detection diverged from batch\n";
  return ok ? 0 : 1;
}
