// perf_online — benchmark-gated perf harness for resource-governed online
// detection (core/governor.hpp): the SLO the robustness work promises is
// "10^7 events stream through a fixed memory budget, with bounded-latency
// windows and an honest verdict", and this harness measures exactly that,
// emitting machine-readable BENCH_online.json.
//
// Four scenarios over the same synthetic event stream (regenerated from
// the same seed each time, never materialized — 10^7 events as a vector
// would dominate the RSS this bench is supposed to measure), plus an
// adversarial churn pair:
//
//   1. budgeted  — hard memory budget; run FIRST so its RSS growth is not
//      masked by an earlier unbounded run's high-water mark. Reports
//      Mev/s, per-window p50/p99 detection latency, peak tuple store vs
//      budget, evictions, and the honesty bits.
//   2. unbounded — no budget, no deadline; the final detection must match
//      plain StreamingDetector cycle for cycle (the differential gate:
//      speed only counts when the answer is right).
//   3. deadline  — small windows under a per-window deadline; reports how
//      far the degradation ladder moved and how many windows degraded.
//   4. shed      — a stream whose canonical tuple set outgrows a small
//      budget, forcing the aging rung; gates that eviction always came
//      with an honest incomplete-coverage verdict.
//   5/6. churn-recompute / churn-incremental — the every-window-churn
//      stream (a fresh AB/BA pair plus fresh ordered filler pairs per
//      window, so edges mutate and a new cycle commits every single
//      window) through the legacy full-recompute enumeration and the
//      incremental dirty-SCC path. Emitted as the JSON `incremental`
//      section; the full run gates >=5x lower p99 window detect latency
//      for the incremental path, with both paths — and plain batch
//      detection — byte-identical on the final cycle set and every cycle
//      surfaced live before finish().
//
// Per-scenario RSS is reported as rss_growth_bytes — the VmHWM delta over
// the scenario — because VmHWM itself is process-monotonic: quoting it per
// scenario would silently attribute the largest earlier peak to every
// later scenario.
//
// The stream: worker threads acquire locks in globally ordered depth bands
// (shared locks, no accidental cycles) from a small per-(thread, depth)
// choice set, each choice tagged with a fixed site — like source locations
// in a real program, so canonical tuples dedup heavily while the raw tuple
// store still grows with every acquire (that growth is what the budget
// governs). A phase counter rotates the site namespace a few times per run
// so the canonical set keeps growing across the whole stream. A scripted
// AB/BA ring on two dedicated threads every ring_every events — fixed
// sites — dedups to a handful of canonical tuples and a stable cycle set.
//
// Since DESIGN.md §17 every scenario ingests through the same reader path
// production uses (a TraceReader over the synthetic stream), so
// GovernorOptions::jobs exercises the real pipelined machinery: jobs > 1
// decodes blocks on a producer thread behind the bounded ring and fans
// suspicious windows out per dirty SCC. The JSON `parallel` section reruns
// the scenarios at jobs ∈ {1, 2, 4} and *gates identity*: cycles, verdict,
// window reports, and the live-delivery transcript must be byte-identical
// at every level (the deadline scenario gates final cycles only — its
// ladder rungs depend on wall-clock latency by design). The jobs=4 vs
// jobs=1 ingest speedup is recorded honestly: it is gated (>= 1.5x) only
// on full runs with hardware_concurrency >= 4 — on 1-CPU runners the
// numbers are published but only identity is enforced, because a speedup
// measured without cores is noise. mevents_per_s spans ingestion only
// (generation + decode + window detection); finish() is reported
// separately as finish_seconds. queue_stall_ms / decode_overlap_pct
// attribute pipelining: push stalls mean ingest was the bottleneck
// (backpressure worked), pop stalls mean decode was.
//
//   perf_online [--quick] [--events=N] [--budget-mb=N]
//               [--out=BENCH_online.json]
#include <algorithm>
#include <array>
#include <deque>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/governor.hpp"
#include "support/flags.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "trace/trace_reader.hpp"

using namespace wolf;

namespace {

// Deterministic synthetic event source. Workers acquire locks whose ids
// rise with nesting depth (so workers alone never deadlock) and release in
// LIFO order. Each (thread, depth) has kChoices fixed lock/site options —
// a fixed code location per option, the way call sites repeat in a real
// program — so the canonical tuple set stays in the low thousands while
// raw tuples accumulate with every acquire. phase_every rotates the site
// namespace so the canonical set keeps growing over a long run instead of
// saturating in the first windows. Every ring_every events two dedicated
// threads run the classic AB/BA pattern on fixed sites.
class OnlineEventStream {
 public:
  OnlineEventStream(int workers, int locks, std::uint64_t phase_every,
                    std::uint64_t ring_every, std::uint64_t seed)
      : workers_(workers), locks_(locks), phase_every_(phase_every),
        ring_every_(ring_every), rng_(seed) {
    held_.resize(static_cast<std::size_t>(workers));
  }

  Event next() {
    if (pending_.empty()) {
      if (ring_every_ != 0 && emitted_ > 0 && emitted_ % ring_every_ == 0)
        script_ring();
      else
        step_worker();
    }
    Event e = pending_.front();
    pending_.pop_front();
    e.seq = emitted_++;
    return e;
  }

 private:
  static constexpr int kMaxDepth = 4;
  static constexpr int kChoices = 3;

  void push(EventKind kind, ThreadId t, LockId l, SiteId site) {
    Event e;
    e.kind = kind;
    e.thread = t;
    e.lock = l;
    e.site = site;
    e.occurrence = 1;
    pending_.push_back(e);
  }

  // Depth d draws from lock band [d*locks/kMaxDepth, ...): globally
  // ordered, so worker threads share locks without forming cycles.
  LockId lock_at(ThreadId t, int depth, int choice) const {
    const int band = locks_ / kMaxDepth;
    return static_cast<LockId>(depth * band +
                               (static_cast<int>(t) * kChoices + choice) %
                                   band);
  }

  // Fixed "source location" per (phase, thread, depth, choice): contexts
  // are paths through these locations, so canonical tuples per phase are
  // bounded by workers * sum_d kChoices^(d+1) — low thousands, like a real
  // program — rather than growing with the event count.
  SiteId site_at(ThreadId t, int depth, int choice) const {
    const std::uint64_t phase =
        phase_every_ == 0 ? 0 : emitted_ / phase_every_;
    return static_cast<SiteId>(
        1000 +
        ((phase * static_cast<std::uint64_t>(workers_) +
          static_cast<std::uint64_t>(t)) *
             kMaxDepth +
         static_cast<std::uint64_t>(depth)) *
            kChoices +
        static_cast<std::uint64_t>(choice));
  }

  void step_worker() {
    const auto t = static_cast<ThreadId>(rr_++ % static_cast<std::uint64_t>(
                                                     workers_));
    auto& stack = held_[static_cast<std::size_t>(t)];
    const bool acquire =
        stack.empty() ||
        (stack.size() < kMaxDepth && rng_.chance(0.55));
    if (acquire) {
      const auto depth = static_cast<int>(stack.size());
      const auto choice = static_cast<int>(rng_.below(kChoices));
      push(EventKind::kLockAcquire, t, lock_at(t, depth, choice),
           site_at(t, depth, choice));
      stack.push_back(lock_at(t, depth, choice));
    } else {
      push(EventKind::kLockRelease, t, stack.back(), kInvalidSite);
      stack.pop_back();
    }
  }

  void script_ring() {
    // Two dedicated threads beyond the worker pool, two dedicated locks
    // beyond the ordered ranges, fixed sites: every injection dedups onto
    // the same canonical tuples, keeping the cycle set stable.
    const auto ta = static_cast<ThreadId>(workers_);
    const auto tb = static_cast<ThreadId>(workers_ + 1);
    const auto ra = static_cast<LockId>(locks_);
    const auto rb = static_cast<LockId>(locks_ + 1);
    push(EventKind::kLockAcquire, ta, ra, 101);
    push(EventKind::kLockAcquire, ta, rb, 102);
    push(EventKind::kLockRelease, ta, rb, kInvalidSite);
    push(EventKind::kLockRelease, ta, ra, kInvalidSite);
    push(EventKind::kLockAcquire, tb, rb, 201);
    push(EventKind::kLockAcquire, tb, ra, 202);
    push(EventKind::kLockRelease, tb, ra, kInvalidSite);
    push(EventKind::kLockRelease, tb, rb, kInvalidSite);
  }

  int workers_;
  int locks_;
  std::uint64_t phase_every_;
  std::uint64_t ring_every_;
  Rng rng_;
  std::uint64_t rr_ = 0;
  std::uint64_t emitted_ = 0;
  std::deque<Event> pending_;
  std::vector<std::vector<LockId>> held_;
};

// Adversarial every-window-churn stream for the incremental-SCC section:
// each window opens with an AB/BA ring on a brand-new lock pair at
// brand-new sites (a new cycle, and an SCC membership change, every
// window), then fills with globally-ordered fresh lock pairs at fresh
// sites (every tuple canonical, so the store and the recompute path's
// enumeration domain grow without bound while the dirty-SCC path touches
// only the window's own pair).
class ChurnEventStream {
 public:
  explicit ChurnEventStream(std::uint64_t window_events)
      : window_events_(window_events) {}

  Event next() {
    if (pending_.empty()) {
      if (emitted_ % window_events_ == 0)
        script_fresh_ring();
      else
        filler_pair();
    }
    Event e = pending_.front();
    pending_.pop_front();
    e.seq = emitted_++;
    return e;
  }

 private:
  void push(EventKind kind, ThreadId t, LockId l, SiteId site) {
    Event e;
    e.kind = kind;
    e.thread = t;
    e.lock = l;
    e.site = site;
    e.occurrence = 1;
    pending_.push_back(e);
  }

  void script_fresh_ring() {
    const LockId ra = next_lock_++, rb = next_lock_++;
    const SiteId s = next_site_;
    next_site_ += 4;
    push(EventKind::kLockAcquire, 1, ra, s);
    push(EventKind::kLockAcquire, 1, rb, s + 1);
    push(EventKind::kLockRelease, 1, rb, kInvalidSite);
    push(EventKind::kLockRelease, 1, ra, kInvalidSite);
    push(EventKind::kLockAcquire, 2, rb, s + 2);
    push(EventKind::kLockAcquire, 2, ra, s + 3);
    push(EventKind::kLockRelease, 2, ra, kInvalidSite);
    push(EventKind::kLockRelease, 2, rb, kInvalidSite);
  }

  void filler_pair() {
    const auto t = static_cast<ThreadId>(3 + (filler_++ % 4));
    const LockId la = next_lock_++, lb = next_lock_++;  // la < lb: no cycle
    const SiteId s = next_site_;
    next_site_ += 2;
    push(EventKind::kLockAcquire, t, la, s);
    push(EventKind::kLockAcquire, t, lb, s + 1);
    push(EventKind::kLockRelease, t, lb, kInvalidSite);
    push(EventKind::kLockRelease, t, la, kInvalidSite);
  }

  std::uint64_t window_events_;
  std::uint64_t emitted_ = 0;
  std::uint64_t filler_ = 0;
  LockId next_lock_ = 1000;
  SiteId next_site_ = 1000;
  std::deque<Event> pending_;
};

// VmHWM from /proc/self/status — the high-water mark of resident memory,
// in bytes (0 where /proc is unavailable; the JSON then says so).
std::size_t peak_rss_bytes() {
  std::ifstream is("/proc/self/status");
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::size_t kb = 0;
      for (char c : line)
        if (c >= '0' && c <= '9') kb = kb * 10 + static_cast<std::size_t>(c - '0');
      return kb * 1024;
    }
  }
  return 0;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

struct ScenarioResult {
  std::string name;
  std::uint64_t events = 0;
  int jobs = 1;
  double mevents_per_s = 0;         // ingestion-only span (see header)
  double finish_seconds = 0;        // final enumeration, outside the span
  double queue_stall_ms = 0;        // ring push+pop stall time (jobs > 1)
  double decode_overlap_pct = 0;    // % of decode hidden behind ingestion
  std::size_t windows = 0;
  double p50_detect_ms = 0;
  double p99_detect_ms = 0;
  std::size_t peak_store_bytes = 0;
  std::size_t budget_bytes = 0;
  std::size_t tuples_evicted = 0;
  std::size_t degraded_windows = 0;
  std::size_t detection_faults = 0;
  bool coverage_complete = false;
  std::string final_level;
  std::size_t cycles = 0;
  std::size_t live_cycles = 0;      // surfaced to windows before finish()
  std::size_t rss_growth_bytes = 0; // VmHWM delta over this scenario
};

// Determinism transcript of one run, for the jobs-invariance gates. The
// `governed` part is byte-stable only for deadline-free scenarios (ladder
// rungs follow wall-clock latency); `cycles` is deterministic always.
struct RunFingerprint {
  std::string cycles;    // final detection, one canonical line per cycle
  std::string governed;  // verdict + window reports + live transcript
};

// TraceReader over a synthetic event stream: the bench's scenarios ingest
// through the same block/reader machinery production uses, so jobs > 1
// exercises the real PipelinedTraceReader path with the generator playing
// the role of decode on the producer side.
template <typename Stream>
class SyntheticTraceReader final : public TraceReader {
 public:
  SyntheticTraceReader(Stream stream, std::uint64_t events)
      : stream_(std::move(stream)), remaining_(events) {}

  bool next_block(std::vector<Event>& out) override {
    out.clear();
    const std::uint64_t n = std::min<std::uint64_t>(remaining_, 1024);
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) out.push_back(stream_.next());
    remaining_ -= n;
    return !out.empty();
  }

 private:
  Stream stream_;
  std::uint64_t remaining_;
};

OnlineEventStream make_stream(std::uint64_t events, std::uint64_t seed,
                              std::uint64_t phases = 8) {
  // Eight phases by default: the canonical set grows stepwise across the
  // whole run (so compaction keeps having fresh duplicates to fold, and
  // the budget accounting is exercised throughout), while the ring fires
  // often enough that suspicious windows trigger incremental enumeration
  // all along. The shed scenario passes more phases so the canonical set
  // itself outgrows the budget and aging has to evict.
  return OnlineEventStream(/*workers=*/8, /*locks=*/48,
                           /*phase_every=*/std::max<std::uint64_t>(1, events / phases),
                           /*ring_every=*/std::max<std::uint64_t>(1, events / 64),
                           seed);
}

// Measurement core, generic over the event source so the churn scenarios
// reuse the exact same accounting as the main stream's. Ingestion runs
// through the reader path (pipelined when options.jobs > 1) and is timed
// alone: the monotonic span covers generation/decode + window detection,
// while finish() — whose cost does not scale with the stream — is timed
// separately. The fingerprint records everything the jobs-invariance gates
// compare: final cycles, verdict (summary + notes), every window report's
// deterministic fields, and the full live-delivery transcript.
template <typename Stream>
ScenarioResult run_scenario_on(const std::string& name, std::uint64_t events,
                               Stream& stream, const GovernorOptions& options,
                               Detection* out_detection = nullptr,
                               RunFingerprint* out_fp = nullptr) {
  ScenarioResult r;
  r.name = name;
  r.events = events;
  r.jobs = options.jobs <= 0 ? ThreadPool::hardware_jobs() : options.jobs;
  r.budget_bytes = options.memory_budget_mb << 20;
  const std::size_t rss_base = peak_rss_bytes();

  // Chain a live-transcript recorder in front of any caller subscriber, so
  // delivery order and sequence numbers are part of the fingerprint.
  std::ostringstream live_log;
  GovernorOptions opts = options;
  const CycleSubscriber user_subscriber = options.on_cycle;
  opts.on_cycle = [&live_log, &user_subscriber](const LiveCycle& lc) {
    live_log << "w" << lc.window << " #" << lc.sequence << ' '
             << lc.cycle->to_string(*lc.dep) << '\n';
    if (user_subscriber) user_subscriber(lc);
  };

  GovernedStreamingDetector governed(opts);
  SyntheticTraceReader<Stream> source(stream, events);
  double ingest_seconds = 0;
  {
    std::optional<PipelinedTraceReader> piped;
    TraceReader* reader = &source;
    if (r.jobs > 1) {
      piped.emplace(source, /*depth=*/std::max(4, 2 * r.jobs));
      reader = &*piped;
    }
    Stopwatch ingest;
    std::vector<Event> block;
    while (reader->next_block(block)) governed.add_block(block);
    ingest_seconds = ingest.seconds();
    if (piped.has_value()) {
      const PipelinedTraceReader::Stats q = piped->stats();
      r.queue_stall_ms = (q.push_stall_seconds + q.pop_stall_seconds) * 1e3;
      // Overlap bound: of the producer's decode time, everything the
      // consumer did NOT spend waiting on an empty ring ran concurrently
      // with ingestion (max(0, decode - pop_stall) of it, as a fraction of
      // decode). 100% = decode fully hidden behind detection.
      if (q.decode_seconds > 0) {
        const double hidden =
            std::max(0.0, q.decode_seconds - q.pop_stall_seconds);
        r.decode_overlap_pct = 100.0 * hidden / q.decode_seconds;
      }
    }
  }
  Stopwatch finish_watch;
  Detection detection = governed.finish();
  r.finish_seconds = finish_watch.seconds();

  r.mevents_per_s = static_cast<double>(events) / ingest_seconds / 1e6;
  const GovernorVerdict& verdict = governed.verdict();
  r.windows = verdict.windows;
  r.tuples_evicted = verdict.tuples_evicted;
  r.degraded_windows = verdict.degraded_windows;
  r.detection_faults = verdict.detection_faults;
  r.coverage_complete = verdict.coverage_complete;
  r.final_level = to_string(verdict.final_level);
  r.cycles = detection.cycles.size();
  r.live_cycles = governed.cycles_surfaced_live();

  std::vector<double> detect_ms;
  detect_ms.reserve(governed.windows().size());
  for (const WindowReport& w : governed.windows()) {
    detect_ms.push_back(w.detect_seconds * 1e3);
    r.peak_store_bytes = std::max(r.peak_store_bytes, w.store_bytes);
  }
  r.p50_detect_ms = percentile(detect_ms, 0.50);
  r.p99_detect_ms = percentile(detect_ms, 0.99);
  const std::size_t rss_after = peak_rss_bytes();
  r.rss_growth_bytes = rss_after > rss_base ? rss_after - rss_base : 0;

  if (out_fp != nullptr) {
    std::ostringstream cyc;
    for (const PotentialDeadlock& c : detection.cycles)
      cyc << c.to_string(detection.dep) << '\n';
    out_fp->cycles = cyc.str();
    std::ostringstream gov;
    gov << verdict.summary() << '\n';
    for (const std::string& note : verdict.notes) gov << "note: " << note << '\n';
    for (const WindowReport& w : governed.windows()) {
      gov << "w" << w.index << " ev=" << w.events << " live=" << w.tuples_live
          << " bytes=" << w.store_bytes << " level=" << to_string(w.level)
          << " susp=" << w.suspicious << " new=" << w.new_cycles
          << " compacted=" << w.tuples_compacted
          << " evicted=" << w.tuples_evicted << " note=" << w.note << '\n';
    }
    gov << live_log.str();
    out_fp->governed = gov.str();
  }
  if (out_detection != nullptr) *out_detection = std::move(detection);
  return r;
}

ScenarioResult run_scenario(const std::string& name, std::uint64_t events,
                            std::uint64_t seed, const GovernorOptions& options,
                            Detection* out_detection = nullptr,
                            std::uint64_t phases = 8,
                            RunFingerprint* out_fp = nullptr) {
  OnlineEventStream stream = make_stream(events, seed, phases);
  return run_scenario_on(name, events, stream, options, out_detection, out_fp);
}

// Two cycle sets are "identical" when they agree cycle by cycle on the
// tuples involved (tuple_idx is canonical across runs of the same stream).
bool same_cycles(const Detection& a, const Detection& b) {
  if (a.cycles.size() != b.cycles.size()) return false;
  for (std::size_t i = 0; i < a.cycles.size(); ++i)
    if (a.cycles[i].tuple_idx != b.cycles[i].tuple_idx) return false;
  return true;
}

struct IncrementalSection {
  std::uint64_t churn_events = 0;
  std::uint64_t window_events = 0;
  ScenarioResult recompute;
  ScenarioResult incremental;
  double p99_speedup = 0;
  bool identical_vs_recompute = false;
  bool identical_vs_batch = false;
  bool live_complete = false;  // every committed cycle surfaced pre-finish
  bool speedup_gated = false;  // the >=5x gate only applies to full runs
};

// One scenario's jobs-invariance record: the same configuration rerun at
// jobs ∈ {1, 2, 4}, each rerun's fingerprint compared against the jobs=1
// baseline. full_fingerprint covers cycles + verdict + windows + live
// transcript; the deadline scenario compares final cycles only (its ladder
// follows wall-clock latency, which no amount of determinism pins down).
struct ParallelScenario {
  std::string name;
  bool full_fingerprint = true;
  std::vector<ScenarioResult> runs;  // jobs = 1, 2, 4 in order
  bool identical = true;
};

struct ParallelSection {
  std::vector<ParallelScenario> scenarios;
  bool identity_ok = true;
  double speedup_4_vs_1 = 0;   // unbounded scenario, ingest Mev/s ratio
  bool speedup_gated = false;  // only full runs on >= 4 hardware threads
};

void write_scenario_json(std::ostream& os, const ScenarioResult& s,
                         const char* indent) {
  os << indent << "{\"name\": \"" << s.name << "\", \"events\": " << s.events
     << ", \"jobs\": " << s.jobs << ",\n"
     << indent << " \"mevents_per_s\": " << s.mevents_per_s
     << ", \"finish_seconds\": " << s.finish_seconds
     << ", \"queue_stall_ms\": " << s.queue_stall_ms
     << ", \"decode_overlap_pct\": " << s.decode_overlap_pct << ",\n"
     << indent << " \"windows\": " << s.windows
     << ", \"p50_window_detect_ms\": " << s.p50_detect_ms
     << ", \"p99_window_detect_ms\": " << s.p99_detect_ms << ",\n"
     << indent << " \"budget_bytes\": " << s.budget_bytes
     << ", \"peak_store_bytes\": " << s.peak_store_bytes
     << ", \"rss_growth_bytes\": " << s.rss_growth_bytes << ",\n"
     << indent << " \"tuples_evicted\": " << s.tuples_evicted
     << ", \"degraded_windows\": " << s.degraded_windows
     << ", \"detection_faults\": " << s.detection_faults
     << ", \"coverage_complete\": " << (s.coverage_complete ? "true" : "false")
     << ", \"final_level\": \"" << s.final_level << "\""
     << ", \"cycles\": " << s.cycles
     << ", \"live_cycles\": " << s.live_cycles << "}";
}

void write_parallel_json(std::ostream& os, const ParallelSection& par) {
  os << "  \"parallel\": {\n"
     << "    \"jobs_levels\": [1, 2, 4],\n"
     << "    \"identity_ok\": " << (par.identity_ok ? "true" : "false")
     << ",\n"
     << "    \"speedup_4_vs_1\": " << par.speedup_4_vs_1
     << ", \"speedup_gate\": " << (par.speedup_gated ? "1.5" : "null")
     << ",\n"
     << "    \"scenarios\": [\n";
  for (std::size_t i = 0; i < par.scenarios.size(); ++i) {
    const ParallelScenario& p = par.scenarios[i];
    os << "      {\"name\": \"" << p.name << "\", \"identical\": "
       << (p.identical ? "true" : "false") << ", \"fingerprint\": \""
       << (p.full_fingerprint ? "cycles+verdict+windows+live" : "cycles")
       << "\",\n"
       << "       \"runs\": [\n";
    for (std::size_t j = 0; j < p.runs.size(); ++j) {
      write_scenario_json(os, p.runs[j], "        ");
      os << (j + 1 < p.runs.size() ? "," : "") << '\n';
    }
    os << "       ]}" << (i + 1 < par.scenarios.size() ? "," : "") << '\n';
  }
  os << "    ]\n  }";
}

void write_json(std::ostream& os, bool quick, std::uint64_t events,
                const std::vector<ScenarioResult>& scenarios,
                bool differential_ok, const IncrementalSection& inc,
                const ParallelSection& par) {
  os << "{\n"
     << "  \"bench\": \"perf_online\",\n"
     << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
     << "  \"events\": " << events << ",\n"
     << "  \"hardware_concurrency\": " << ThreadPool::hardware_jobs() << ",\n"
     << "  \"differential_vs_batch_ok\": "
     << (differential_ok ? "true" : "false") << ",\n"
     << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    write_scenario_json(os, scenarios[i], "    ");
    os << (i + 1 < scenarios.size() ? "," : "") << '\n';
  }
  os << "  ],\n"
     << "  \"incremental\": {\n"
     << "    \"churn_events\": " << inc.churn_events
     << ", \"window_events\": " << inc.window_events << ",\n"
     << "    \"recompute\":\n";
  write_scenario_json(os, inc.recompute, "      ");
  os << ",\n    \"incremental\":\n";
  write_scenario_json(os, inc.incremental, "      ");
  os << ",\n"
     << "    \"p99_speedup\": " << inc.p99_speedup
     << ", \"p99_speedup_gate\": "
     << (inc.speedup_gated ? "5" : "null") << ",\n"
     << "    \"identical_vs_recompute\": "
     << (inc.identical_vs_recompute ? "true" : "false")
     << ", \"identical_vs_batch\": "
     << (inc.identical_vs_batch ? "true" : "false")
     << ", \"live_complete\": " << (inc.live_complete ? "true" : "false")
     << "\n  },\n";
  write_parallel_json(os, par);
  os << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_bool("quick", false, "CI smoke mode: 10^6 events");
  flags.define_int("events", 0, "event count (0 = 10^7, or 10^6 with --quick)");
  flags.define_int("budget-mb", 0,
                   "memory budget for the budgeted scenario "
                   "(0 = 16 full / 2 quick)");
  flags.define_int("seed", 2014, "stream seed");
  flags.define_string("out", "BENCH_online.json", "JSON output path");
  if (!flags.parse(argc, argv)) return 1;

  const bool quick = flags.get_bool("quick");
  std::uint64_t events = static_cast<std::uint64_t>(flags.get_int("events"));
  if (events == 0) events = quick ? 1'000'000 : 10'000'000;
  std::size_t budget_mb = static_cast<std::size_t>(flags.get_int("budget-mb"));
  if (budget_mb == 0) budget_mb = quick ? 2 : 16;
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  std::vector<ScenarioResult> scenarios;

  // Scenario runners parameterized on jobs: each builds its GovernorOptions
  // from scratch so the parallel section can rerun the byte-identical
  // configuration at jobs ∈ {2, 4} and compare fingerprints.
  const auto budgeted_run = [&](int jobs, Detection* det, RunFingerprint* fp) {
    GovernorOptions o;
    o.memory_budget_mb = budget_mb;
    o.jobs = jobs;
    return run_scenario("budgeted", events, seed, o, det, 8, fp);
  };
  const auto unbounded_run = [&](int jobs, Detection* det, RunFingerprint* fp) {
    GovernorOptions o;
    o.jobs = jobs;
    return run_scenario("unbounded", events, seed, o, det, 8, fp);
  };
  const auto deadline_run = [&](int jobs, Detection* det, RunFingerprint* fp) {
    GovernorOptions o;
    o.window_events = 8192;
    o.window_deadline_ms = 1;
    o.jobs = jobs;
    return run_scenario("deadline", events, seed, o, det, 8, fp);
  };
  const auto shed_run = [&](int jobs, Detection* det, RunFingerprint* fp) {
    GovernorOptions o;
    o.memory_budget_mb = 2;
    o.jobs = jobs;
    return run_scenario("shed", events, seed, o, det, 64, fp);
  };

  RunFingerprint budgeted_fp, unbounded_fp, deadline_fp, shed_fp, churn_fp;

  // 1. Budgeted — first, so VmHWM is the governed run's peak.
  scenarios.push_back(budgeted_run(1, nullptr, &budgeted_fp));

  // 2. Unbounded + differential gate vs plain streaming detection.
  Detection governed_detection;
  scenarios.push_back(unbounded_run(1, &governed_detection, &unbounded_fp));

  StreamingDetector batch;
  {
    OnlineEventStream stream = make_stream(events, seed);
    for (std::uint64_t i = 0; i < events; ++i) batch.add(stream.next());
  }
  Detection batch_detection = batch.finish();
  bool differential_ok =
      governed_detection.cycles.size() == batch_detection.cycles.size();
  for (std::size_t i = 0; differential_ok &&
                          i < governed_detection.cycles.size();
       ++i)
    differential_ok = governed_detection.cycles[i].tuple_idx ==
                      batch_detection.cycles[i].tuple_idx;

  // 3. Deadline pressure on small windows.
  scenarios.push_back(deadline_run(1, nullptr, &deadline_fp));

  // 4. Shedding — a 64-phase stream whose canonical tuple set alone
  // outgrows a small budget, so compaction cannot save it and aging must
  // evict; the honest verdict (coverage_complete = false) is gated below.
  scenarios.push_back(shed_run(1, nullptr, &shed_fp));

  // 5/6. Incremental section: the every-window-churn stream through the
  // legacy recompute path and the dirty-SCC path, plus a plain batch
  // reference. The full run gates a >=5x p99 window-latency advantage.
  IncrementalSection inc;
  inc.churn_events = quick ? 100'000 : 400'000;
  inc.window_events = quick ? 4'096 : 8'192;
  inc.speedup_gated = !quick;

  Detection churn_rec_det, churn_inc_det;
  {
    GovernorOptions o;
    o.window_events = inc.window_events;
    o.incremental_scc = false;
    ChurnEventStream stream(inc.window_events);
    inc.recompute = run_scenario_on("churn-recompute", inc.churn_events,
                                    stream, o, &churn_rec_det);
  }
  const auto churn_inc_run = [&](int jobs, Detection* det, RunFingerprint* fp,
                                 std::size_t* delivered) {
    GovernorOptions o;
    o.window_events = inc.window_events;
    o.incremental_scc = true;
    o.jobs = jobs;
    if (delivered != nullptr)
      o.on_cycle = [delivered](const LiveCycle&) { ++*delivered; };
    ChurnEventStream stream(inc.window_events);
    return run_scenario_on("churn-incremental", inc.churn_events, stream, o,
                           det, fp);
  };
  std::size_t delivered = 0;
  inc.incremental = churn_inc_run(1, &churn_inc_det, &churn_fp, &delivered);
  Detection churn_batch_det;
  {
    StreamingDetector batch_churn;
    ChurnEventStream stream(inc.window_events);
    for (std::uint64_t i = 0; i < inc.churn_events; ++i)
      batch_churn.add(stream.next());
    churn_batch_det = batch_churn.finish();
  }
  inc.identical_vs_recompute = same_cycles(churn_inc_det, churn_rec_det);
  inc.identical_vs_batch = same_cycles(churn_inc_det, churn_batch_det);
  // Every committed cycle was delivered to the subscriber before finish().
  inc.live_complete = delivered == inc.incremental.live_cycles &&
                      delivered == churn_inc_det.cycles.size();
  inc.p99_speedup = inc.incremental.p99_detect_ms > 0
                        ? inc.recompute.p99_detect_ms /
                              inc.incremental.p99_detect_ms
                        : 0;
  scenarios.push_back(inc.recompute);
  scenarios.push_back(inc.incremental);

  // Jobs-invariance reruns (DESIGN.md §17): every governed scenario rerun
  // at jobs ∈ {2, 4}, each rerun's fingerprint compared against its jobs=1
  // baseline. Identity is gated on every run, --quick included; the jobs=4
  // ingest speedup is gated only on full runs with >= 4 hardware threads
  // (a speedup measured without cores is noise, not a regression).
  ParallelSection par;
  par.speedup_gated = !quick && ThreadPool::hardware_jobs() >= 4;
  struct ParallelSpec {
    const char* name;
    bool full_fingerprint;
    const RunFingerprint* base_fp;
    const ScenarioResult* base_result;
    std::function<ScenarioResult(int, RunFingerprint*)> rerun;
  };
  const std::vector<ParallelSpec> specs = {
      {"budgeted", true, &budgeted_fp, &scenarios[0],
       [&](int j, RunFingerprint* fp) { return budgeted_run(j, nullptr, fp); }},
      {"unbounded", true, &unbounded_fp, &scenarios[1],
       [&](int j, RunFingerprint* fp) { return unbounded_run(j, nullptr, fp); }},
      {"deadline", false, &deadline_fp, &scenarios[2],
       [&](int j, RunFingerprint* fp) { return deadline_run(j, nullptr, fp); }},
      {"shed", true, &shed_fp, &scenarios[3],
       [&](int j, RunFingerprint* fp) { return shed_run(j, nullptr, fp); }},
      {"churn-incremental", true, &churn_fp, &scenarios[5],
       [&](int j, RunFingerprint* fp) {
         return churn_inc_run(j, nullptr, fp, nullptr);
       }},
  };
  for (const ParallelSpec& spec : specs) {
    ParallelScenario p;
    p.name = spec.name;
    p.full_fingerprint = spec.full_fingerprint;
    p.runs.push_back(*spec.base_result);
    for (int j : {2, 4}) {
      RunFingerprint fp;
      p.runs.push_back(spec.rerun(j, &fp));
      const bool same =
          fp.cycles == spec.base_fp->cycles &&
          (!spec.full_fingerprint || fp.governed == spec.base_fp->governed);
      if (!same) p.identical = false;
    }
    if (!p.identical) par.identity_ok = false;
    par.scenarios.push_back(std::move(p));
  }
  {
    const ParallelScenario& unb = par.scenarios[1];
    par.speedup_4_vs_1 = unb.runs[0].mevents_per_s > 0
                             ? unb.runs[2].mevents_per_s /
                                   unb.runs[0].mevents_per_s
                             : 0;
  }

  TextTable table({"Scenario", "Mev/s", "Windows", "p50 ms", "p99 ms",
                   "Peak store", "Budget", "Evicted", "Complete", "Cycles"});
  for (const ScenarioResult& s : scenarios)
    table.add_row({s.name, TextTable::num(s.mevents_per_s, 2),
                   std::to_string(s.windows),
                   TextTable::num(s.p50_detect_ms, 2),
                   TextTable::num(s.p99_detect_ms, 2),
                   TextTable::num(static_cast<double>(s.peak_store_bytes) / 1e6,
                                  1) + " MB",
                   s.budget_bytes == 0
                       ? std::string("-")
                       : TextTable::num(
                             static_cast<double>(s.budget_bytes) / 1e6, 1) +
                             " MB",
                   std::to_string(s.tuples_evicted),
                   s.coverage_complete ? "yes" : "NO (reported)",
                   std::to_string(s.cycles)});
  table.render(std::cout);
  std::cout << "\ndifferential vs batch: "
            << (differential_ok ? "identical" : "DIVERGED")
            << ", budgeted-run RSS growth "
            << TextTable::num(
                   static_cast<double>(scenarios[0].rss_growth_bytes) / 1e6, 1)
            << " MB, churn p99 speedup "
            << TextTable::num(inc.p99_speedup, 1) << "x ("
            << TextTable::num(inc.recompute.p99_detect_ms, 2) << " ms -> "
            << TextTable::num(inc.incremental.p99_detect_ms, 2) << " ms)\n";

  std::cout << "\njobs-invariance (fingerprints vs jobs=1):\n";
  TextTable ptable({"Scenario", "Jobs", "Mev/s", "Stall ms", "Ovlp %",
                    "Identical"});
  for (const ParallelScenario& p : par.scenarios)
    for (const ScenarioResult& r : p.runs)
      ptable.add_row({p.name, std::to_string(r.jobs),
                      TextTable::num(r.mevents_per_s, 2),
                      TextTable::num(r.queue_stall_ms, 1),
                      TextTable::num(r.decode_overlap_pct, 0),
                      p.identical ? "yes" : "NO"});
  ptable.render(std::cout);
  std::cout << "jobs=4 vs jobs=1 ingest speedup "
            << TextTable::num(par.speedup_4_vs_1, 2) << "x"
            << (par.speedup_gated
                    ? " (gate >= 1.5x)"
                    : " (identity-only: quick run or < 4 hardware threads)")
            << '\n';

  const std::string out = flags.get_string("out");
  std::ofstream os(out);
  if (!os) {
    std::cerr << "cannot write " << out << '\n';
    return 1;
  }
  write_json(os, quick, events, scenarios, differential_ok, inc, par);
  std::cout << "wrote " << out << '\n';

  // Correctness gates: throughput only counts when the contract held.
  bool ok = differential_ok;
  for (const ScenarioResult& s : scenarios) {
    if (s.budget_bytes > 0 && s.peak_store_bytes > s.budget_bytes) {
      std::cerr << "FAIL: " << s.name << " exceeded its memory budget\n";
      ok = false;
    }
    if (s.tuples_evicted > 0 && s.coverage_complete) {
      std::cerr << "FAIL: " << s.name
                << " evicted without an incomplete-coverage verdict\n";
      ok = false;
    }
    if (s.name == "shed" && s.tuples_evicted == 0) {
      std::cerr << "FAIL: shed scenario never hit the aging rung\n";
      ok = false;
    }
  }
  if (!differential_ok)
    std::cerr << "FAIL: governed detection diverged from batch\n";
  // Incremental-section gates: both paths and batch must agree, live
  // surfacing must be complete, coverage semantics unchanged, and (full
  // runs only) the incremental path must be >=5x faster at the p99.
  if (!inc.identical_vs_recompute) {
    std::cerr << "FAIL: churn incremental diverged from recompute path\n";
    ok = false;
  }
  if (!inc.identical_vs_batch) {
    std::cerr << "FAIL: churn incremental diverged from batch detection\n";
    ok = false;
  }
  if (!inc.live_complete) {
    std::cerr << "FAIL: churn run did not surface every cycle live\n";
    ok = false;
  }
  if (!inc.recompute.coverage_complete || !inc.incremental.coverage_complete) {
    std::cerr << "FAIL: churn run lost coverage without a budget\n";
    ok = false;
  }
  if (inc.speedup_gated && inc.p99_speedup < 5.0) {
    std::cerr << "FAIL: churn p99 speedup " << inc.p99_speedup << " < 5x\n";
    ok = false;
  }
  // Parallel-section gates: identity always (the whole point of §17 is
  // that jobs never changes the answer); speedup only where it can exist.
  if (!par.identity_ok) {
    for (const ParallelScenario& p : par.scenarios)
      if (!p.identical)
        std::cerr << "FAIL: " << p.name
                  << " diverged from its jobs=1 fingerprint\n";
    ok = false;
  }
  if (par.speedup_gated && par.speedup_4_vs_1 < 1.5) {
    std::cerr << "FAIL: jobs=4 ingest speedup " << par.speedup_4_vs_1
              << " < 1.5x\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
