// Reproduces Figure 8: the hit rate of reproducing each potential deadlock,
// averaged over N replay runs per deadlock (the paper uses 100), for WOLF's
// Gs-driven Replayer vs the randomized DeadlockFuzzer baseline.
//
// A "hit" is a re-execution that deadlocks with acquisitions blocked at the
// same source locations as the potential deadlock (§4.2). Hit rates are
// averaged over the replayable cycles of each benchmark (those that survive
// the Pruner and Generator — the paper replays only reported potential
// deadlocks); benchmarks with no replayable cycle (cache4j) are omitted like
// in the figure.
#include <cstdio>
#include <iostream>

#include "baseline/deadlock_fuzzer.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"
#include "suite_runner.hpp"

using namespace wolf;

int main(int argc, char** argv) {
  Flags flags;
  flags.define_int("seed", 2014, "seed");
  flags.define_int("runs", 100, "replay runs per potential deadlock");
  flags.define_int("max-cycles", 12,
                   "cap on measured cycles per benchmark (keeps Jigsaw's "
                   "data-dependent livelocks from dominating runtime)");
  if (!flags.parse(argc, argv)) return 1;

  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const int runs = static_cast<int>(flags.get_int("runs"));
  const int max_cycles = static_cast<int>(flags.get_int("max-cycles"));

  std::cout << "Figure 8 — hit rate over " << runs
            << " runs per potential deadlock (WOLF vs DeadlockFuzzer)\n";
  TextTable table(
      {"Benchmark", "Cycles measured", "WOLF hit rate", "DF hit rate"});

  for (const workloads::Benchmark& bench : workloads::standard_suite()) {
    auto trace = sim::record_trace(bench.program, seed, 50, bench.max_steps);
    if (!trace.has_value()) continue;
    Detection detection = detect(*trace);
    auto verdicts = prune(detection);

    double wolf_sum = 0, df_sum = 0;
    int measured = 0;
    for (std::size_t c = 0;
         c < detection.cycles.size() && measured < max_cycles; ++c) {
      if (is_false(verdicts[c])) continue;
      GeneratorResult gen = generate(detection.cycles[c], detection.dep);
      if (!gen.feasible) continue;

      ReplayOptions options;
      options.attempts = runs;
      options.stop_on_first_hit = false;
      options.seed = mix64(seed + c);
      options.max_steps = bench.max_steps;

      ReplayStats wolf_stats = replay(bench.program, detection.cycles[c],
                                      detection.dep, gen.gs, options);
      ReplayStats df_stats = baseline::fuzz(bench.program,
                                            detection.cycles[c],
                                            detection.dep, options);
      wolf_sum += wolf_stats.hit_rate();
      df_sum += df_stats.hit_rate();
      ++measured;
    }
    if (measured == 0) continue;  // nothing replayable (e.g. cache4j)
    table.add_row({bench.name, std::to_string(measured),
                   TextTable::num(wolf_sum / measured, 2),
                   TextTable::num(df_sum / measured, 2)});
  }
  table.render(std::cout);
  std::cout << "\npaper: WOLF above DF on every benchmark; DF near zero on\n"
               "the abstraction-colliding Collections deadlocks (Fig. 9).\n";
  return 0;
}
